#include <gtest/gtest.h>

#include <vector>

#include "cluster/node.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/injector.h"

namespace {

using namespace adapt;
using namespace adapt::sim;
using cluster::ArrivalClock;
using cluster::AvailabilityMode;
using cluster::NodeSpec;

struct Recorder : InterruptionInjector::Listener {
  struct Event {
    cluster::NodeIndex node;
    bool up;
    common::Seconds when;
  };
  EventQueue* queue = nullptr;
  std::vector<Event> events;
  void on_node_down(cluster::NodeIndex node) override {
    events.push_back({node, false, queue->now()});
  }
  void on_node_up(cluster::NodeIndex node) override {
    events.push_back({node, true, queue->now()});
  }
};

NodeSpec replay_node(std::vector<trace::DownInterval> intervals) {
  NodeSpec spec;
  spec.mode = AvailabilityMode::kReplay;
  spec.down_intervals = std::move(intervals);
  return spec;
}

TEST(Injector, ReplayExactIntervals) {
  std::vector<NodeSpec> nodes = {replay_node({{10.0, 20.0}, {50.0, 55.0}})};
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.replay_horizon = 100.0;
  config.randomize_replay_offset = false;
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(1),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 60.0; });
  ASSERT_GE(recorder.events.size(), 4u);
  EXPECT_FALSE(recorder.events[0].up);
  EXPECT_DOUBLE_EQ(recorder.events[0].when, 10.0);
  EXPECT_TRUE(recorder.events[1].up);
  EXPECT_DOUBLE_EQ(recorder.events[1].when, 20.0);
  EXPECT_DOUBLE_EQ(recorder.events[2].when, 50.0);
  EXPECT_DOUBLE_EQ(recorder.events[3].when, 55.0);
}

TEST(Injector, ReplayWrapsAroundHorizon) {
  std::vector<NodeSpec> nodes = {replay_node({{10.0, 20.0}})};
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.replay_horizon = 100.0;
  config.randomize_replay_offset = false;
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(1),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 250.0; });
  // Downs at 10, 110, 210.
  std::vector<common::Seconds> downs;
  for (const auto& e : recorder.events) {
    if (!e.up) downs.push_back(e.when);
  }
  ASSERT_GE(downs.size(), 3u);
  EXPECT_DOUBLE_EQ(downs[0], 10.0);
  EXPECT_DOUBLE_EQ(downs[1], 110.0);
  EXPECT_DOUBLE_EQ(downs[2], 210.0);
}

TEST(Injector, ReplayOffsetStraddlingOutageStartsDown) {
  std::vector<NodeSpec> nodes = {replay_node({{10.0, 30.0}})};
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.replay_horizon = 100.0;
  config.replay_offsets = {15.0};  // inside [10, 30): starts down
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(1),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 20.0; });
  ASSERT_GE(recorder.events.size(), 2u);
  EXPECT_FALSE(recorder.events[0].up);
  EXPECT_DOUBLE_EQ(recorder.events[0].when, 0.0);
  EXPECT_TRUE(recorder.events[1].up);
  EXPECT_DOUBLE_EQ(recorder.events[1].when, 15.0);  // 30 - 15
}

TEST(Injector, ModelAbsoluteClockMatchesSteadyState) {
  NodeSpec spec;
  spec.mode = AvailabilityMode::kModel;
  spec.arrival_clock = ArrivalClock::kAbsoluteTime;
  spec.params = {0.02, 10.0};  // rho = 0.2
  std::vector<NodeSpec> nodes = {spec};
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(5));
  injector.start();
  const double horizon = 2e6;
  queue.run_until([&] { return queue.now() >= horizon; });
  double down_time = 0.0;
  double down_since = -1.0;
  for (const auto& e : recorder.events) {
    if (!e.up && down_since < 0) down_since = e.when;
    if (e.up && down_since >= 0) {
      down_time += e.when - down_since;
      down_since = -1.0;
    }
  }
  // M/G/1: unavailable fraction = rho.
  EXPECT_NEAR(down_time / horizon, 0.2, 0.02);
}

TEST(Injector, ModelUptimeClockMatchesAlternatingRenewal) {
  NodeSpec spec;
  spec.mode = AvailabilityMode::kModel;
  spec.arrival_clock = ArrivalClock::kUptime;
  spec.params = {0.1, 8.0};  // up Exp(10), down Exp(8)
  std::vector<NodeSpec> nodes = {spec};
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(6));
  injector.start();
  const double horizon = 1e6;
  queue.run_until([&] { return queue.now() >= horizon; });
  double down_time = 0.0;
  double down_since = -1.0;
  for (const auto& e : recorder.events) {
    if (!e.up && down_since < 0) down_since = e.when;
    if (e.up && down_since >= 0) {
      down_time += e.when - down_since;
      down_since = -1.0;
    }
  }
  // Alternating renewal: unavailability = mu / (MTBI + mu) = 8/18.
  EXPECT_NEAR(down_time / horizon, 8.0 / 18.0, 0.02);
}

TEST(Injector, InitialDownStartsNodeDown) {
  NodeSpec spec;
  spec.mode = AvailabilityMode::kModel;
  spec.arrival_clock = ArrivalClock::kAbsoluteTime;
  spec.params = {1e-9, 5.0};  // practically no fresh arrivals
  std::vector<NodeSpec> nodes = {spec};
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.initial_down_until = {42.0};
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(7),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 50.0; });
  ASSERT_GE(recorder.events.size(), 2u);
  EXPECT_FALSE(recorder.events[0].up);
  EXPECT_DOUBLE_EQ(recorder.events[0].when, 0.0);
  EXPECT_TRUE(recorder.events[1].up);
  EXPECT_DOUBLE_EQ(recorder.events[1].when, 42.0);
}

TEST(Injector, DrawInitialDownStatistics) {
  NodeSpec stable;
  stable.mode = AvailabilityMode::kModel;
  stable.params = {0.01, 30.0};  // rho = 0.3
  NodeSpec unstable;
  unstable.mode = AvailabilityMode::kModel;
  unstable.params = {0.5, 3.0};  // rho = 1.5
  NodeSpec dedicated;  // kAlwaysUp

  std::vector<NodeSpec> nodes;
  for (int i = 0; i < 3000; ++i) nodes.push_back(stable);
  nodes.push_back(unstable);
  nodes.push_back(dedicated);

  common::Rng rng(8);
  const auto down = draw_initial_down(nodes, rng);
  std::size_t down_count = 0;
  for (std::size_t i = 0; i < 3000; ++i) {
    if (down[i] > 0) ++down_count;
  }
  EXPECT_NEAR(down_count, 900.0, 90.0);  // P(down) = rho = 0.3
  EXPECT_GT(down[3000], 1e5);            // unstable: effectively gone
  EXPECT_EQ(down[3001], 0.0);            // dedicated never starts down
}

TEST(Injector, DepartureHazardRemovesNodesForGood) {
  // 200 dedicated nodes with a 1/100 s^-1 departure hazard: by t = 100,
  // 1 - e^-1 ~ 63% have left, each with exactly one final down event.
  std::vector<NodeSpec> nodes(200);
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.departure_rate = 1.0 / 100.0;
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(17),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 100.0; });
  EXPECT_NEAR(static_cast<double>(injector.departures()), 200 * 0.632, 25.0);
  std::vector<int> downs(nodes.size(), 0);
  for (const auto& e : recorder.events) {
    EXPECT_FALSE(e.up);  // a departure is final: no node ever returns
    ++downs[e.node];
  }
  for (cluster::NodeIndex i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(downs[i], injector.is_departed(i) ? 1 : 0);
    EXPECT_EQ(injector.is_up(i), !injector.is_departed(i));
  }
}

TEST(Injector, BurstDepartsExpectedFraction) {
  std::vector<NodeSpec> nodes(400);
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.burst_at = 50.0;
  config.burst_fraction = 0.5;
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(23),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 60.0; });
  EXPECT_NEAR(static_cast<double>(injector.departures()), 200.0, 40.0);
  for (const auto& e : recorder.events) {
    EXPECT_FALSE(e.up);
    EXPECT_DOUBLE_EQ(e.when, 50.0);  // correlated: one instant
  }
}

TEST(Injector, DomainBurstTakesWholeDomainsDown) {
  // 12 dedicated nodes in 4 racks of 3; a 2-rack burst at t = 50 must
  // depart exactly two complete racks, all at the same instant.
  std::vector<NodeSpec> nodes(12);
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.domain_burst_at = 50.0;
  config.domain_burst_count = 2;
  config.domain_of = {0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3};
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(31),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 60.0; });
  EXPECT_EQ(injector.departures(), 6u);
  for (const auto& e : recorder.events) {
    EXPECT_FALSE(e.up);
    EXPECT_DOUBLE_EQ(e.when, 50.0);
  }
  // Correlated by construction: a rack is all-down or all-up.
  for (std::uint32_t d = 0; d < 4; ++d) {
    int departed = 0;
    for (cluster::NodeIndex i = 0; i < nodes.size(); ++i) {
      if (config.domain_of[i] == d && injector.is_departed(i)) ++departed;
    }
    EXPECT_TRUE(departed == 0 || departed == 3)
        << "rack " << d << " partially departed";
  }
}

TEST(Injector, DomainBurstCountClampsToDomainCount) {
  std::vector<NodeSpec> nodes(6);
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.domain_burst_at = 10.0;
  config.domain_burst_count = 99;  // more than the 3 racks that exist
  config.domain_of = {0, 0, 1, 1, 2, 2};
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(2),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 20.0; });
  EXPECT_EQ(injector.departures(), 6u);  // every domain hit once
}

TEST(Injector, DomainBurstRequiresDomainMap) {
  std::vector<NodeSpec> nodes(4);
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.domain_burst_at = 10.0;
  config.domain_burst_count = 1;  // armed, but domain_of left empty
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(2),
                                config);
  EXPECT_THROW(injector.start(), std::invalid_argument);
}

TEST(Injector, LateJoinerStartsAbsentThenJoins) {
  std::vector<NodeSpec> nodes(2);
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.join_at = {0.0, 30.0};
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(1),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 100.0; });
  // Node 1: down at 0 (absent), up at 30 (joins), then stays (kAlwaysUp).
  ASSERT_EQ(recorder.events.size(), 2u);
  EXPECT_EQ(recorder.events[0].node, 1u);
  EXPECT_FALSE(recorder.events[0].up);
  EXPECT_DOUBLE_EQ(recorder.events[0].when, 0.0);
  EXPECT_EQ(recorder.events[1].node, 1u);
  EXPECT_TRUE(recorder.events[1].up);
  EXPECT_DOUBLE_EQ(recorder.events[1].when, 30.0);
  EXPECT_TRUE(injector.is_up(1));
}

TEST(Injector, JoinerThatDepartsFirstNeverJoins) {
  std::vector<NodeSpec> nodes(1);
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.join_at = {30.0};
  config.departure_rates = {10.0};  // departs within ~0.1 s w.h.p.
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(3),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 100.0; });
  EXPECT_TRUE(injector.is_departed(0));
  EXPECT_FALSE(injector.is_up(0));
  // One absent-at-start down event; the join at 30 was suppressed.
  ASSERT_EQ(recorder.events.size(), 1u);
  EXPECT_FALSE(recorder.events[0].up);
}

// Property: replay wrap-around past the horizon preserves the trace's
// structure — per-node transitions strictly alternate down/up with
// strictly increasing timestamps, and each wrapped cycle repeats the
// recorded intervals shifted by exactly one horizon.
TEST(Injector, ReplayWrapAroundKeepsIntervalsOrderedAndPeriodic) {
  std::vector<NodeSpec> nodes = {replay_node({{10.0, 20.0}, {50.0, 55.0}}),
                                 replay_node({{0.0, 25.0}})};
  EventQueue queue;
  Recorder recorder;
  recorder.queue = &queue;
  InterruptionInjector::Config config;
  config.replay_horizon = 100.0;
  config.randomize_replay_offset = false;
  InterruptionInjector injector(queue, nodes, recorder, common::Rng(2),
                                config);
  injector.start();
  queue.run_until([&] { return queue.now() >= 350.0; });

  std::vector<std::vector<Recorder::Event>> per_node(nodes.size());
  for (const auto& e : recorder.events) per_node[e.node].push_back(e);
  for (cluster::NodeIndex n = 0; n < nodes.size(); ++n) {
    const auto& events = per_node[n];
    ASSERT_GE(events.size(), 6u);
    for (std::size_t i = 0; i < events.size(); ++i) {
      // Strict down/up alternation starting with a down...
      EXPECT_EQ(events[i].up, i % 2 == 1);
      // ...at strictly increasing times.
      if (i > 0) EXPECT_GT(events[i].when, events[i - 1].when);
    }
    // Periodicity: cycle c is the recorded trace shifted by c * horizon.
    const std::size_t per_cycle = 2 * nodes[n].down_intervals.size();
    for (std::size_t i = per_cycle; i < events.size(); ++i) {
      EXPECT_DOUBLE_EQ(events[i].when, events[i - per_cycle].when + 100.0);
      EXPECT_EQ(events[i].up, events[i - per_cycle].up);
    }
  }
}

TEST(Injector, ReplayUpAtHelper) {
  const NodeSpec node = replay_node({{10.0, 20.0}, {30.0, 40.0}});
  EXPECT_TRUE(replay_up_at(node, 5.0));
  EXPECT_FALSE(replay_up_at(node, 10.0));
  EXPECT_FALSE(replay_up_at(node, 19.9));
  EXPECT_TRUE(replay_up_at(node, 20.0));
  EXPECT_TRUE(replay_up_at(node, 25.0));
  EXPECT_FALSE(replay_up_at(node, 35.0));
  EXPECT_TRUE(replay_up_at(node, 45.0));
}

}  // namespace
