// Rebalancer pending-move protocol: begin/commit/abort state machine,
// rebalance_file plan semantics (metadata untouched until commit), the
// dead-node sweep of in-flight reservations, and the client-side
// liveness fixes (cp source selection, charge_transfer guards).
#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "hdfs/client.h"
#include "hdfs/namenode.h"
#include "obs/metrics.h"
#include "placement/adapt_policy.h"
#include "placement/random_policy.h"

namespace {

using namespace adapt;
using namespace adapt::hdfs;
using adapt::common::Rng;

// One file, one block, replica on node 0 of a 4-node cluster.
struct MoveFixture {
  NameNode nn{4};
  BlockId block = 0;

  MoveFixture() {
    Rng rng(1);
    std::vector<double> et = {1.0, 100.0, 100.0, 100.0};
    const FileId id =
        nn.create_file("f", 1, 1, placement::make_adapt_policy(et, 1), rng);
    block = nn.file(id).blocks[0];
    EXPECT_EQ(nn.block(block).replicas, std::vector<cluster::NodeIndex>{0});
  }
};

TEST(PendingMove, BeginReservesSpaceWithoutPublishingReplica) {
  MoveFixture f;
  f.nn.begin_move(f.block, 0, 2);
  // No readable replica at the destination...
  EXPECT_EQ(f.nn.block(f.block).replicas,
            std::vector<cluster::NodeIndex>{0});
  // ...but the space is held and the move is visible as pending.
  EXPECT_EQ(f.nn.datanodes().stored(2), 1u);
  EXPECT_TRUE(f.nn.has_pending_move(f.block, 0, 2));
  ASSERT_EQ(f.nn.pending_moves().size(), 1u);
  EXPECT_EQ(f.nn.pending_moves()[0].to, 2u);
}

TEST(PendingMove, CommitFlipsMetadataOnce) {
  MoveFixture f;
  f.nn.begin_move(f.block, 0, 2);
  f.nn.commit_move(f.block, 0, 2);
  EXPECT_EQ(f.nn.block(f.block).replicas,
            std::vector<cluster::NodeIndex>{2});
  // The reservation became the replica: usage moved, not doubled.
  EXPECT_EQ(f.nn.datanodes().stored(2), 1u);
  EXPECT_EQ(f.nn.datanodes().stored(0), 0u);
  EXPECT_TRUE(f.nn.pending_moves().empty());
  // Committing again is a protocol violation.
  EXPECT_THROW(f.nn.commit_move(f.block, 0, 2), std::logic_error);
}

TEST(PendingMove, AbortReleasesReservation) {
  MoveFixture f;
  f.nn.begin_move(f.block, 0, 2);
  f.nn.abort_move(f.block, 0, 2);
  EXPECT_EQ(f.nn.datanodes().stored(2), 0u);
  EXPECT_EQ(f.nn.block(f.block).replicas,
            std::vector<cluster::NodeIndex>{0});
  EXPECT_FALSE(f.nn.has_pending_move(f.block, 0, 2));
  EXPECT_THROW(f.nn.abort_move(f.block, 0, 2), std::logic_error);
}

TEST(PendingMove, BeginValidatesEndpoints) {
  MoveFixture f;
  // Source must hold the block.
  EXPECT_THROW(f.nn.begin_move(f.block, 1, 2), std::logic_error);
  // Destination must not already hold it.
  f.nn.add_replica(f.block, 3);
  EXPECT_THROW(f.nn.begin_move(f.block, 0, 3), std::logic_error);
  // Destination must not already be a pending target for the block.
  f.nn.begin_move(f.block, 0, 2);
  EXPECT_THROW(f.nn.begin_move(f.block, 3, 2), std::logic_error);
  // Dead destinations are rejected.
  f.nn.mark_node_dead(1);
  EXPECT_THROW(f.nn.begin_move(f.block, 0, 1), std::logic_error);
}

TEST(PendingMove, CommitToleratesSourceWrittenOffByDeath) {
  MoveFixture f;
  f.nn.begin_move(f.block, 0, 2);
  // The source dies mid-transfer; its replica is written off but the
  // outbound move survives (the bytes may already be on the wire from
  // another holder).
  f.nn.mark_node_dead(0);
  EXPECT_TRUE(f.nn.has_pending_move(f.block, 0, 2));
  f.nn.commit_move(f.block, 0, 2);
  EXPECT_EQ(f.nn.block(f.block).replicas,
            std::vector<cluster::NodeIndex>{2});
}

TEST(PendingMove, DeadDestinationSweepsItsPendingMoves) {
  MoveFixture f;
  f.nn.begin_move(f.block, 0, 2);
  f.nn.mark_node_dead(2);
  // The reservation was auto-aborted with the death.
  EXPECT_FALSE(f.nn.has_pending_move(f.block, 0, 2));
  EXPECT_TRUE(f.nn.pending_moves().empty());
  f.nn.revive_node(2);
  EXPECT_EQ(f.nn.datanodes().stored(2), 0u);
}

TEST(PendingMove, CommitWithReplicaAlreadyAtDestinationReleasesOnly) {
  // Re-replication can land its own copy at the migration's destination
  // while the move is on the wire; the commit must then release the
  // reservation instead of double-registering the replica.
  MoveFixture f;
  f.nn.begin_move(f.block, 0, 2);
  f.nn.add_replica(f.block, 2);  // concurrent pipeline's copy
  f.nn.commit_move(f.block, 0, 2);
  const std::vector<cluster::NodeIndex> expect = {0, 2};
  EXPECT_EQ(f.nn.block(f.block).replicas, expect);
  EXPECT_EQ(f.nn.datanodes().stored(2), 1u);
  EXPECT_TRUE(f.nn.pending_moves().empty());
}

TEST(PendingMove, PendingTargetExcludedFromNewReplicaEligibility) {
  MoveFixture f;
  f.nn.begin_move(f.block, 0, 2);
  const cluster::NodeMask eligible =
      f.nn.eligibility_for_new_replica(f.block);
  EXPECT_FALSE(eligible.test(0));  // holder
  EXPECT_FALSE(eligible.test(2));  // pending target
  EXPECT_TRUE(eligible.test(1));
  EXPECT_TRUE(eligible.test(3));
}

TEST(Rebalance, PlanIsPendingUntilCommitted) {
  NameNode nn(6);
  Rng rng(5);
  const FileId id =
      nn.create_file("f", 40, 1, placement::make_random_policy(6), rng);
  std::vector<double> et(6, 100.0);
  et[0] = 1.0;
  const auto before = nn.file_distribution(id);
  const auto moves =
      nn.rebalance_file(id, placement::make_adapt_policy(et, 40), rng);
  ASSERT_FALSE(moves.empty());
  // Plan only: metadata identical, every move registered as pending,
  // destination space reserved.
  EXPECT_EQ(nn.file_distribution(id), before);
  EXPECT_EQ(nn.pending_moves().size(), moves.size());
  for (const ReplicaMove& move : moves) {
    EXPECT_TRUE(nn.has_pending_move(move.block, move.from, move.to));
  }
  // Aborting the whole plan restores the exact original accounting.
  for (const ReplicaMove& move : moves) {
    nn.abort_move(move.block, move.from, move.to);
  }
  EXPECT_EQ(nn.file_distribution(id), before);
  EXPECT_EQ(nn.datanodes().total_stored(), 40u);
}

TEST(Rebalance, FilterExcludingAllButHoldersKeepsEveryReplica) {
  // Regression for the eligible.set(old_node) escape hatch: when the
  // filter bans every node except the current holders, each draw can
  // only return the replica's own node — no moves, nothing lost.
  NameNode nn(6);
  Rng rng(11);
  const FileId id =
      nn.create_file("f", 30, 2, placement::make_random_policy(6), rng);
  const auto before = nn.file_distribution(id);
  std::set<cluster::NodeIndex> holders;
  for (const BlockId b : nn.file(id).blocks) {
    for (const cluster::NodeIndex n : nn.block(b).replicas) {
      holders.insert(n);
    }
  }
  std::vector<double> et(6, 1.0);  // any policy; the filter dominates
  const auto moves = nn.rebalance_file(
      id, placement::make_adapt_policy(et, 30), rng,
      [&](cluster::NodeIndex n) { return holders.count(n) > 0; });
  // A holder of block A may be drawn for block B it doesn't hold, so
  // moves between holders are legal — but no replica may leave the
  // holder set, and an all-banned draw must keep the replica in place.
  for (const ReplicaMove& move : moves) {
    EXPECT_TRUE(holders.count(move.to) > 0);
    nn.commit_move(move.block, move.from, move.to);
  }
  EXPECT_EQ(nn.datanodes().total_stored(), 60u);
  for (const BlockId b : nn.file(id).blocks) {
    EXPECT_EQ(nn.block(b).replicas.size(), 2u);
    for (const cluster::NodeIndex n : nn.block(b).replicas) {
      EXPECT_TRUE(holders.count(n) > 0);
    }
  }
  (void)before;
}

TEST(Rebalance, FilterBanningEverythingIsANoOp) {
  NameNode nn(4);
  Rng rng(12);
  const FileId id =
      nn.create_file("f", 20, 2, placement::make_random_policy(4), rng);
  const auto before = nn.file_distribution(id);
  std::vector<double> et(4, 1.0);
  const auto moves =
      nn.rebalance_file(id, placement::make_adapt_policy(et, 20), rng,
                        [](cluster::NodeIndex) { return false; });
  EXPECT_TRUE(moves.empty());
  EXPECT_TRUE(nn.pending_moves().empty());
  EXPECT_EQ(nn.file_distribution(id), before);
}

TEST(Rebalance, FidelityCapRespectedByPlan) {
  NameNode::Options options;
  options.fidelity_cap = true;
  NameNode nn(4, options);
  Rng rng(13);
  const FileId id =
      nn.create_file("f", 40, 1, placement::make_random_policy(4), rng);
  // Extreme weights: without the cap everything would pile on node 0.
  std::vector<double> et = {1.0, 1e6, 1e6, 1e6};
  const auto moves =
      nn.rebalance_file(id, placement::make_adapt_policy(et, 40), rng);
  for (const ReplicaMove& move : moves) {
    nn.commit_move(move.block, move.from, move.to);
  }
  // Cap = ceil(m(k+1)/n) = ceil(40*2/4) = 20.
  const auto dist = nn.file_distribution(id);
  for (const std::uint64_t c : dist) EXPECT_LE(c, 20u);
}

// ---------------------------------------------------------------------
// Client liveness fixes
// ---------------------------------------------------------------------

struct ClientLivenessFixture : ::testing::Test {
  ClientLivenessFixture()
      : namenode_(4),
        network_(make_network()),
        client_(namenode_, placement::make_random_policy(4),
                placement::make_adapt_policy({1.0, 1.0, 10.0, 10.0}, 40),
                &network_, 64 * common::kMiB),
        rng_(23) {}

  static cluster::Network make_network() {
    cluster::Network::Config config;
    config.uplink_bps.assign(4, common::mbps(8));
    config.downlink_bps.assign(4, common::mbps(8));
    return cluster::Network(config);
  }

  NameNode namenode_;
  cluster::Network network_;
  Client client_;
  Rng rng_;
};

TEST_F(ClientLivenessFixture, CpSkipsDeadSourceHolders) {
  client_.copy_from_local("src", 12, 2, false, rng_);
  // Kill one holder of every block: round-robin source selection must
  // never pick it.
  const FileId src_id = namenode_.file_id("src");
  const cluster::NodeIndex victim = namenode_.block(
      namenode_.file(src_id).blocks[0]).replicas[0];
  namenode_.mark_node_dead(victim);
  obs::MetricsRegistry metrics;
  client_.set_metrics(&metrics);
  TransferSummary summary;
  const FileId dst = client_.cp("src", "dst", false, rng_, 0.0, &summary,
                                [&](cluster::NodeIndex n) {
                                  return n != victim;
                                });
  EXPECT_EQ(namenode_.file(dst).blocks.size(), 12u);
  // Every charged transfer came from a live endpoint, so none were
  // skipped and the skip counter stayed at zero.
  const obs::MetricsSnapshot snap = metrics.snapshot();
  for (const auto& counter : snap.counters) {
    if (counter.first == "hdfs.transfer_skipped_dead") {
      EXPECT_EQ(counter.second, 0.0);
    }
  }
}

TEST_F(ClientLivenessFixture, CpFallsBackToOriginWhenAllHoldersDown) {
  client_.copy_from_local("src", 1, 1, false, rng_);
  const FileId src_id = namenode_.file_id("src");
  const cluster::NodeIndex holder =
      namenode_.block(namenode_.file(src_id).blocks[0]).replicas[0];
  // The block's only holder is down but the destinations stay live, so
  // the copy streams from the origin instead of a dead node.
  client_.set_liveness(
      [holder](cluster::NodeIndex n) { return n != holder; });
  TransferSummary summary;
  const FileId dst = client_.cp("src", "dst", false, rng_, 0.0, &summary,
                                [holder](cluster::NodeIndex n) {
                                  return n != holder;
                                });
  EXPECT_EQ(namenode_.file(dst).blocks.size(), 1u);
  EXPECT_EQ(summary.blocks_moved, 1u);
}

TEST_F(ClientLivenessFixture, ChargeTransferSkipsDeadEndpointAndCounts) {
  client_.copy_from_local("f", 10, 1, false, rng_);
  obs::MetricsRegistry metrics;
  client_.set_metrics(&metrics);
  // A liveness callback that bans node 0 forces every move whose
  // endpoint is node 0 through the skip path.
  client_.set_liveness([](cluster::NodeIndex n) { return n != 0; });
  const TransferSummary summary = client_.adapt_rebalance("f", rng_);
  double skipped = 0.0;
  for (const auto& counter : metrics.snapshot().counters) {
    if (counter.first == "hdfs.transfer_skipped_dead") {
      skipped = counter.second;
    }
  }
  // Whether any transfer touched node 0 depends on the draw; what must
  // hold: skipped transfers charged nothing, committed ones did, and
  // metadata stayed consistent (total replicas conserved).
  EXPECT_EQ(namenode_.datanodes().total_stored(), 10u);
  EXPECT_TRUE(namenode_.pending_moves().empty());
  EXPECT_EQ(summary.blocks_moved * (64 * common::kMiB),
            summary.bytes_moved);
  (void)skipped;
}

TEST_F(ClientLivenessFixture, AdaptRebalanceCommitsOnlyChargedMoves) {
  client_.copy_from_local("f", 40, 1, false, rng_);
  const auto before = namenode_.file_distribution(namenode_.file_id("f"));
  const TransferSummary summary = client_.adapt_rebalance("f", rng_);
  // The fixture's ADAPT policy weights nodes 0/1 (E[T] 1 vs 10).
  const auto after = namenode_.file_distribution(namenode_.file_id("f"));
  EXPECT_GT(after[0] + after[1], before[0] + before[1]);
  // Every move either committed (metadata flipped) or aborted (pending
  // list empty either way).
  EXPECT_TRUE(namenode_.pending_moves().empty());
  EXPECT_GT(summary.blocks_moved, 0u);
}

}  // namespace
