// Shuffle + reduce phase extension.
#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "common/units.h"
#include "sim/reduce_phase.h"

namespace {

using namespace adapt;
using namespace adapt::sim;
using common::kMiB;
using common::mbps;

cluster::Cluster bare_cluster(std::size_t n) {
  cluster::Cluster cluster;
  cluster.nodes.resize(n);
  for (cluster::NodeSpec& node : cluster.nodes) {
    node.uplink_bps = mbps(8);
    node.downlink_bps = mbps(8);
  }
  return cluster;
}

TEST(ReducePhase, SingleNodeIsComputeOnly) {
  const cluster::Cluster cl = bare_cluster(1);
  ReduceConfig config;
  config.reducers = 1;
  config.output_ratio = 1.0;
  config.gamma_reduce = 30.0;
  // Four map outputs, all on node 0, reducer on node 0: no transfers.
  ReducePhaseSimulation sim(cl, {0, 0, 0, 0}, config);
  const ReduceResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.elapsed, 30.0);
  EXPECT_EQ(r.shuffle_fetches, 0u);
  EXPECT_EQ(r.shuffle_bytes, 0u);
}

TEST(ReducePhase, ShuffleMovesRemotePartitions) {
  const cluster::Cluster cl = bare_cluster(2);
  ReduceConfig config;
  config.reducers = 1;
  config.output_ratio = 0.5;
  config.gamma_reduce = 10.0;
  config.seed = 4;
  // Map outputs on both nodes; the reducer lands somewhere and fetches
  // the other node's aggregate (2 blocks * 0.5 * 64 MiB).
  ReducePhaseSimulation sim(cl, {0, 0, 1, 1}, config);
  const ReduceResult r = sim.run();
  EXPECT_EQ(r.shuffle_fetches, 1u);
  const double transfer =
      common::transfer_time(2 * (64 * kMiB / 2), mbps(8));
  EXPECT_NEAR(r.elapsed, transfer + 10.0, 1.0);
  EXPECT_EQ(r.shuffle_bytes, 2u * (64 * kMiB / 2));
}

TEST(ReducePhase, AutoGammaScalesWithShuffleVolume) {
  const cluster::Cluster cl = bare_cluster(1);
  ReduceConfig config;
  config.reducers = 1;
  config.output_ratio = 1.0;
  config.gamma_map = 12.0;
  // 3 blocks of output for 1 reducer at the map rate = 36 s.
  ReducePhaseSimulation sim(cl, {0, 0, 0}, config);
  EXPECT_NEAR(sim.run().elapsed, 36.0, 1e-6);
}

TEST(ReducePhase, MoreReducersShardTheWork) {
  const cluster::Cluster cl = bare_cluster(4);
  std::vector<cluster::NodeIndex> winners;
  for (int i = 0; i < 16; ++i) winners.push_back(i % 4);
  ReduceConfig base;
  base.output_ratio = 0.25;
  base.seed = 9;
  base.reducers = 1;
  ReducePhaseSimulation one(cl, winners, base);
  base.reducers = 4;
  ReducePhaseSimulation four(cl, winners, base);
  EXPECT_GT(one.run().elapsed, four.run().elapsed);
}

TEST(ReducePhase, SourceOutageStallsThenOriginRescues) {
  cluster::Cluster cl = bare_cluster(2);
  cl.nodes[0].mode = cluster::AvailabilityMode::kReplay;
  cl.nodes[0].down_intervals = {{0.0, 1e5}};  // gone for good
  ReduceConfig config;
  config.reducers = 1;
  config.output_ratio = 1.0;
  config.gamma_reduce = 5.0;
  config.reissue_delay = 40.0;
  config.randomize_replay_offset = false;
  config.replay_horizon = 2e5;
  config.seed = 11;
  // Output on node 0 (down); reducer must land on node 1 and eventually
  // take the partition from the origin.
  ReducePhaseSimulation sim(cl, {0}, config);
  const ReduceResult r = sim.run();
  EXPECT_EQ(r.origin_refetches, 1u);
  const double transfer = common::transfer_time(64 * kMiB, mbps(8));
  EXPECT_NEAR(r.elapsed, 40.0 + transfer + 5.0, 6.0);
}

TEST(ReducePhase, ReducerHostDeathReassigns) {
  cluster::Cluster cl = bare_cluster(2);
  cl.nodes[1].mode = cluster::AvailabilityMode::kReplay;
  cl.nodes[1].down_intervals = {{10.0, 1e5}};
  ReduceConfig config;
  config.reducers = 2;
  config.output_ratio = 1.0;
  config.gamma_reduce = 100.0;  // long enough to be caught by the outage
  config.randomize_replay_offset = false;
  config.replay_horizon = 2e5;
  config.seed = 13;
  ReducePhaseSimulation sim(cl, {0, 0}, config);
  const ReduceResult r = sim.run();
  // Whichever reducer started on node 1 was killed at t=10 and
  // reassigned to node 0.
  EXPECT_GE(r.reducer_reassignments, 1u);
  EXPECT_EQ(r.reducers, 2u);
}

TEST(ReducePhase, AvailabilityAwarePlacementAvoidsBadHosts) {
  cluster::Cluster cl = bare_cluster(3);
  ReduceConfig config;
  config.reducers = 30;
  config.output_ratio = 0.1;
  config.gamma_reduce = 1.0;
  config.availability_aware = true;
  config.params = {{0.0, 0.0}, {0.0, 0.0}, {0.3, 3.0}};  // node 2: rho 0.9
  config.gamma_map = 6.0;
  config.seed = 17;
  ReducePhaseSimulation sim(cl, {0, 1}, config);
  // Smoke: runs to completion despite the skewed weights.
  const ReduceResult r = sim.run();
  EXPECT_EQ(r.reducers, 30u);
}

TEST(ReducePhase, Validation) {
  const cluster::Cluster cl = bare_cluster(2);
  ReduceConfig config;
  EXPECT_THROW(ReducePhaseSimulation(cl, {}, config),
               std::invalid_argument);
  config.output_ratio = 0.0;
  EXPECT_THROW(ReducePhaseSimulation(cl, {0}, config),
               std::invalid_argument);
  config.output_ratio = 1.0;
  config.availability_aware = true;  // but params missing
  EXPECT_THROW(ReducePhaseSimulation(cl, {0}, config),
               std::invalid_argument);
}

}  // namespace
