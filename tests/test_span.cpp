// SpanProfiler: nesting and self-time accounting, close-order records,
// error handling on unbalanced usage, and the JSONL export/parse/fold
// pipeline trace_inspect drives.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/replay.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace {

using namespace adapt;
using obs::SpanProfiler;
using obs::SpanRecord;

TEST(Span, SelfTimeExcludesChildren) {
  SpanProfiler prof;
  prof.begin("outer", 0.0);
  prof.begin("inner_a", 10.0);
  prof.end(30.0);
  prof.begin("inner_b", 40.0);
  prof.end(45.0);
  prof.end(100.0);

  const std::vector<SpanRecord> records = prof.take_records();
  ASSERT_EQ(records.size(), 3u);
  // Records are in close order: inner_a, inner_b, outer.
  EXPECT_EQ(records[0].name, "inner_a");
  EXPECT_EQ(records[0].depth, 1u);
  EXPECT_DOUBLE_EQ(records[0].dur_sim, 20.0);
  EXPECT_DOUBLE_EQ(records[0].self_sim, 20.0);
  EXPECT_EQ(records[1].name, "inner_b");
  EXPECT_DOUBLE_EQ(records[1].dur_sim, 5.0);
  EXPECT_EQ(records[2].name, "outer");
  EXPECT_EQ(records[2].depth, 0u);
  EXPECT_DOUBLE_EQ(records[2].dur_sim, 100.0);
  EXPECT_DOUBLE_EQ(records[2].self_sim, 75.0);  // 100 - 20 - 5
}

TEST(Span, HostTimeIsMonotonic) {
  SpanProfiler prof;
  prof.begin("a", 0.0);
  prof.end(0.0);  // zero simulated duration: setup-phase convention
  const std::vector<SpanRecord> records = prof.take_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].dur_sim, 0.0);
  EXPECT_GE(records[0].dur_host_ns, records[0].self_host_ns);
}

TEST(Span, UnbalancedUseThrows) {
  SpanProfiler prof;
  EXPECT_THROW(prof.end(1.0), std::logic_error);  // nothing open
  prof.begin("open", 0.0);
  EXPECT_EQ(prof.open_depth(), 1u);
  EXPECT_THROW(prof.take_records(), std::logic_error);  // still open
  prof.end(1.0);
  EXPECT_NO_THROW(prof.take_records());
}

TEST(Span, JsonlRoundTripAndFold) {
  obs::RunObservations run;
  {
    SpanProfiler prof;
    prof.begin("map_phase", 0.0);
    prof.begin("heartbeat_sweep", 5.0);
    prof.end(6.0);
    prof.begin("heartbeat_sweep", 10.0);
    prof.end(12.0);
    prof.end(50.0);
    run.spans = prof.take_records();
  }
  const std::string jsonl =
      obs::spans_to_jsonl({run}, /*include_host=*/false);
  EXPECT_EQ(jsonl.find("{\"run\": 0, \"span\": \"heartbeat_sweep\""), 0u);
  EXPECT_EQ(jsonl.find("host_ns"), std::string::npos);

  const auto parsed = obs::parse_spans_jsonl(jsonl);
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].size(), 3u);
  EXPECT_EQ(parsed[0][2].name, "map_phase");
  EXPECT_DOUBLE_EQ(parsed[0][2].self_sim, 47.0);

  const std::vector<obs::PhaseTotals> phases = obs::fold_spans(parsed[0]);
  ASSERT_EQ(phases.size(), 2u);  // name-sorted
  EXPECT_EQ(phases[0].name, "heartbeat_sweep");
  EXPECT_EQ(phases[0].count, 2u);
  EXPECT_DOUBLE_EQ(phases[0].dur_sim, 3.0);
  EXPECT_EQ(phases[1].name, "map_phase");
  EXPECT_DOUBLE_EQ(phases[1].self_sim, 47.0);
}

TEST(Span, HostExportOnlyWhenRequested) {
  obs::RunObservations run;
  SpanProfiler prof;
  prof.begin("a", 0.0);
  prof.end(1.0);
  run.spans = prof.take_records();
  const std::string with_host =
      obs::spans_to_jsonl({run}, /*include_host=*/true);
  EXPECT_NE(with_host.find("\"host_ns\": "), std::string::npos);
  EXPECT_NE(with_host.find("\"host_self_ns\": "), std::string::npos);
  // Host fields parse back when present.
  const auto parsed = obs::parse_spans_jsonl(with_host);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0][0].dur_host_ns, run.spans[0].dur_host_ns);
}

TEST(Span, ParseRejectsMalformedLines) {
  EXPECT_THROW(obs::parse_spans_jsonl("{\"span\": \"x\"}\n"),
               std::runtime_error);
}

}  // namespace
