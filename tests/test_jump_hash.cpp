#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "cluster/node_mask.h"
#include "common/rng.h"
#include "placement/jump_hash_policy.h"

namespace {

using namespace adapt;
using adapt::cluster::NodeIndex;
using adapt::cluster::NodeMask;
using adapt::common::Rng;
using adapt::placement::JumpHashPolicy;
using adapt::placement::jump_consistent_hash;

std::vector<NodeIndex> identity_order(std::size_t n) {
  std::vector<NodeIndex> order(n);
  std::iota(order.begin(), order.end(), 0u);
  return order;
}

TEST(JumpConsistentHash, StaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng();
    EXPECT_EQ(jump_consistent_hash(key, 1), 0u);
    EXPECT_LT(jump_consistent_hash(key, 7), 7u);
    EXPECT_LT(jump_consistent_hash(key, 1000), 1000u);
  }
  EXPECT_THROW(jump_consistent_hash(42, 0), std::invalid_argument);
}

// The defining property: growing from n to n+1 buckets moves only the
// keys that land in the new bucket — an expected 1/(n+1) fraction — and
// every moved key moves *to* bucket n.
TEST(JumpConsistentHash, GrowthRemapsOnlyToTheNewBucket) {
  const int keys = 20000;
  for (const std::uint32_t n : {10u, 100u}) {
    Rng rng(n);
    int moved = 0;
    for (int i = 0; i < keys; ++i) {
      const std::uint64_t key = rng();
      const std::uint32_t before = jump_consistent_hash(key, n);
      const std::uint32_t after = jump_consistent_hash(key, n + 1);
      if (before != after) {
        EXPECT_EQ(after, n);
        ++moved;
      }
    }
    const double fraction = static_cast<double>(moved) / keys;
    EXPECT_LE(fraction, 2.0 / (n + 1));
    EXPECT_GT(fraction, 0.25 / (n + 1));
  }
}

TEST(JumpConsistentHash, RoughlyUniform) {
  const std::uint32_t buckets = 16;
  const int keys = 32000;
  std::vector<int> counts(buckets, 0);
  Rng rng(9);
  for (int i = 0; i < keys; ++i) {
    ++counts[jump_consistent_hash(rng(), buckets)];
  }
  const double expected = static_cast<double>(keys) / buckets;
  for (const int count : counts) {
    EXPECT_NEAR(count, expected, 0.15 * expected);
  }
}

TEST(JumpHashPolicy, ValidatesPermutation) {
  EXPECT_THROW(JumpHashPolicy({}), std::invalid_argument);
  EXPECT_THROW(JumpHashPolicy({0, 0}), std::invalid_argument);   // dup
  EXPECT_THROW(JumpHashPolicy({0, 2}), std::invalid_argument);   // gap
  EXPECT_NO_THROW(JumpHashPolicy({1, 0, 2}));
}

TEST(JumpHashPolicy, ChooseKeyedIsPureAndDeterministic) {
  const JumpHashPolicy policy(identity_order(16));
  const NodeMask all(16, true);
  Rng used(42);
  Rng untouched(42);
  for (std::uint64_t key = 0; key < 64; ++key) {
    const auto first = policy.choose_keyed(key, 0, all, used);
    const auto second = policy.choose_keyed(key, 0, all, used);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, *second);
  }
  // The keyed draw never consumed the generator.
  EXPECT_EQ(used(), untouched());
}

TEST(JumpHashPolicy, HonorsMask) {
  const JumpHashPolicy policy(identity_order(32));
  NodeMask eligible(32);
  eligible.set(3);
  eligible.set(17);
  eligible.set(31);
  Rng rng(5);
  for (std::uint64_t key = 0; key < 500; ++key) {
    const auto node = policy.choose_keyed(key, 1, eligible, rng);
    ASSERT_TRUE(node.has_value());
    EXPECT_TRUE(eligible.test(*node));
  }
  const NodeMask empty(32);
  EXPECT_FALSE(policy.choose_keyed(7, 0, empty, rng).has_value());
  const NodeMask wrong_size(8, true);
  EXPECT_THROW(policy.choose_keyed(7, 0, wrong_size, rng),
               std::invalid_argument);
}

// Masking one node out displaces only the keys that hashed onto it, and
// each displaced key probes exactly one step to the ring successor.
TEST(JumpHashPolicy, MaskedNodeDisplacesOnlyItsOwnKeys) {
  const std::uint32_t n = 32;
  const JumpHashPolicy policy(identity_order(n));
  const NodeMask all(n, true);
  NodeMask without(n, true);
  const NodeIndex gone = 13;
  without.reset(gone);
  Rng rng(3);
  Rng keys(77);
  int moved = 0;
  const int trials = 8000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t key = keys();
    const auto before = policy.choose_keyed(key, 0, all, rng);
    const auto after = policy.choose_keyed(key, 0, without, rng);
    ASSERT_TRUE(before.has_value());
    ASSERT_TRUE(after.has_value());
    if (*before != *after) {
      EXPECT_EQ(*before, gone);
      EXPECT_EQ(*after, (gone + 1) % n);  // ring successor in order_
      ++moved;
    }
  }
  // A leave touches ~1/n of keys; assert the O(1/n) remap bound.
  EXPECT_LE(static_cast<double>(moved) / trials, 2.0 / n);
}

// A node join (order grows by one bucket at the tail) remaps at most a
// ~1/(n+1) fraction of keys, all onto the new node.
TEST(JumpHashPolicy, JoinRemapsSmallFraction) {
  const std::uint32_t n = 24;
  const JumpHashPolicy small(identity_order(n));
  const JumpHashPolicy grown(identity_order(n + 1));
  const NodeMask all_small(n, true);
  const NodeMask all_grown(n + 1, true);
  Rng rng(3);
  Rng keys(123);
  int moved = 0;
  const int trials = 8000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t key = keys();
    const auto before = small.choose_keyed(key, 0, all_small, rng);
    const auto after = grown.choose_keyed(key, 0, all_grown, rng);
    if (*before != *after) {
      EXPECT_EQ(*after, n);  // moved keys land on the joiner
      ++moved;
    }
  }
  EXPECT_LE(static_cast<double>(moved) / trials, 2.0 / (n + 1));
  EXPECT_GT(moved, 0);
}

// Replica ordinals of one block must start from decorrelated buckets —
// otherwise replica 1 would always sit next to replica 0 in ring order.
TEST(JumpHashPolicy, OrdinalsDecorrelate) {
  const std::uint32_t n = 32;
  const JumpHashPolicy policy(identity_order(n));
  const NodeMask all(n, true);
  Rng rng(3);
  Rng keys(55);
  int same = 0;
  int successor = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t key = keys();
    const auto r0 = policy.choose_keyed(key, 0, all, rng);
    const auto r1 = policy.choose_keyed(key, 1, all, rng);
    if (*r0 == *r1) ++same;
    if ((*r0 + 1) % n == *r1) ++successor;
  }
  // Independent uniform draws collide ~1/n of the time.
  EXPECT_LE(same, trials / 8);
  EXPECT_LE(successor, trials / 8);
}

// The policy respects a non-identity (domain-major) order: probing past
// a masked node follows the order table, not index order.
TEST(JumpHashPolicy, ProbesInOrderTableSequence) {
  // order: bucket i -> node (reversed).
  std::vector<NodeIndex> order = {3, 2, 1, 0};
  const JumpHashPolicy policy(order);
  NodeMask only_zero(4);
  only_zero.set(0);
  Rng rng(1);
  for (std::uint64_t key = 0; key < 32; ++key) {
    // Whatever bucket the key hits, probing must end on node 0.
    EXPECT_EQ(*policy.choose_keyed(key, 0, only_zero, rng), 0u);
  }
}

TEST(JumpHashPolicy, UnkeyedChooseIsUniformOverMask) {
  const JumpHashPolicy policy(identity_order(8));
  NodeMask eligible(8);
  eligible.set(2);
  eligible.set(5);
  Rng rng(17);
  int low = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto node = policy.choose(eligible, rng);
    ASSERT_TRUE(node.has_value());
    ASSERT_TRUE(*node == 2 || *node == 5);
    if (*node == 2) ++low;
  }
  EXPECT_NEAR(low, 1000, 150);
  const NodeMask empty(8);
  EXPECT_FALSE(policy.choose(empty, rng).has_value());
}

TEST(JumpHashPolicy, UniformTargetShares) {
  const JumpHashPolicy policy(identity_order(5));
  const std::vector<double> shares = policy.target_shares();
  ASSERT_EQ(shares.size(), 5u);
  for (const double share : shares) EXPECT_DOUBLE_EQ(share, 0.2);
  EXPECT_EQ(policy.name(), "jump");
}

}  // namespace
