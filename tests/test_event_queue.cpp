#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace {

using adapt::sim::EventQueue;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  while (q.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue q;
  int fired = 0;
  auto handle = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  handle.cancel();
  EXPECT_FALSE(handle.active());
  while (q.run_next()) {
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.processed(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.schedule(q.now() + 1.0, chain);
  };
  q.schedule(0.0, chain);
  while (q.run_next()) {
  }
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilPredicate) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule(i, [&] { ++count; });
  }
  EXPECT_TRUE(q.run_until([&] { return count == 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(q.run_until([&] { return count == 100; }));
  EXPECT_EQ(count, 10);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run_next();
  EXPECT_THROW(q.schedule(4.0, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(q.schedule(5.0, [] {}));
}

}  // namespace
