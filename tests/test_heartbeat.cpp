#include <gtest/gtest.h>

#include <vector>

#include "cluster/heartbeat.h"
#include "common/rng.h"

namespace {

using adapt::cluster::HeartbeatCollector;

HeartbeatCollector::Config config_3s_2miss() {
  HeartbeatCollector::Config config;
  config.interval = 3.0;
  config.miss_threshold = 2;
  return config;
}

TEST(Heartbeat, MessageModeDetectsMisses) {
  HeartbeatCollector hb(1, config_3s_2miss());
  hb.observe_heartbeat(0, 3.0);
  hb.observe_heartbeat(0, 6.0);
  EXPECT_TRUE(hb.believed_up(0, 8.0));
  // Silence past 6 + 2*3 = 12 -> down.
  EXPECT_FALSE(hb.believed_up(0, 13.0));
  // Beats resume -> up, and the outage is recorded.
  hb.observe_heartbeat(0, 20.0);
  EXPECT_TRUE(hb.believed_up(0, 20.0));
  // Query before the next miss deadline (20 + 6).
  const auto p = hb.estimate(0, 25.0);
  EXPECT_GT(p.lambda, 0.0);
  EXPECT_NEAR(p.mu, 8.0, 1e-9);  // down at 12, up at 20
  // Silence after the last beat is itself a detected outage.
  EXPECT_FALSE(hb.believed_up(0, 30.0));
}

TEST(Heartbeat, TransitionModeAddsDetectionLatency) {
  HeartbeatCollector hb(1, config_3s_2miss());
  hb.notify_down(0, 10.0);
  EXPECT_TRUE(hb.believed_up(0, 12.0));    // not yet noticed
  EXPECT_FALSE(hb.believed_up(0, 16.1));   // 10 + 6 passed
  hb.notify_up(0, 40.0);
  const auto p = hb.estimate(0, 50.0);
  EXPECT_NEAR(p.mu, 40.0 - 16.0, 1e-9);
}

TEST(Heartbeat, ShortOutageEscapesDetection) {
  HeartbeatCollector hb(1, config_3s_2miss());
  hb.notify_down(0, 10.0);
  hb.notify_up(0, 12.0);  // back before 10 + 6
  EXPECT_TRUE(hb.believed_up(0, 100.0));
  const auto p = hb.estimate(0, 100.0);
  EXPECT_EQ(p.lambda, 0.0);
}

TEST(Heartbeat, TransitionModeNodesStayUpWithoutNotifications) {
  HeartbeatCollector hb(2, config_3s_2miss());
  // No heartbeats ever observed, no notifications: still believed up.
  EXPECT_TRUE(hb.believed_up(0, 1e6));
  EXPECT_EQ(hb.estimate(0, 1e6).lambda, 0.0);
}

TEST(Heartbeat, EstimatesAllNodes) {
  HeartbeatCollector hb(3, config_3s_2miss());
  hb.notify_down(1, 0.0);
  hb.notify_up(1, 100.0);
  const auto all = hb.estimates(200.0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].lambda, 0.0);
  EXPECT_GT(all[1].lambda, 0.0);
  EXPECT_EQ(all[2].lambda, 0.0);
}

HeartbeatCollector::Config config_with_dead_timeout(double timeout) {
  HeartbeatCollector::Config config = config_3s_2miss();
  config.dead_timeout = timeout;
  return config;
}

TEST(Heartbeat, BelievedDeadAfterTimeout) {
  HeartbeatCollector hb(1, config_with_dead_timeout(10.0));
  hb.notify_down(0, 20.0);
  // Believed down from 26 (detection latency 6); dead 10 s later.
  EXPECT_FALSE(hb.believed_dead(0, 30.0));
  EXPECT_FALSE(hb.believed_dead(0, 35.9));
  EXPECT_TRUE(hb.believed_dead(0, 36.0));
  // Sticky: still dead at any later query...
  EXPECT_TRUE(hb.believed_dead(0, 1e6));
  // ...until the node is heard from again.
  hb.notify_up(0, 50.0);
  EXPECT_FALSE(hb.believed_dead(0, 1e6));
  EXPECT_TRUE(hb.believed_up(0, 50.0));
}

TEST(Heartbeat, ZeroDeadTimeoutDisablesDeclaration) {
  HeartbeatCollector hb(1, config_3s_2miss());  // dead_timeout = 0
  hb.notify_down(0, 0.0);
  EXPECT_FALSE(hb.believed_up(0, 100.0));
  EXPECT_FALSE(hb.believed_dead(0, 1e9));
}

TEST(Heartbeat, ShortOutageNeverTurnsDead) {
  HeartbeatCollector hb(1, config_with_dead_timeout(10.0));
  hb.notify_down(0, 10.0);
  hb.notify_up(0, 20.0);  // believed down 16..20, under the timeout
  EXPECT_FALSE(hb.believed_dead(0, 1e6));
}

TEST(Heartbeat, MessageModeSilenceTurnsDead) {
  HeartbeatCollector hb(1, config_with_dead_timeout(10.0));
  hb.observe_heartbeat(0, 3.0);
  // Last beat at 3, misses detected at 9, dead at 19.
  EXPECT_FALSE(hb.believed_dead(0, 18.9));
  EXPECT_TRUE(hb.believed_dead(0, 19.1));
  hb.observe_heartbeat(0, 30.0);  // resurrects
  EXPECT_FALSE(hb.believed_dead(0, 30.0));
  EXPECT_TRUE(hb.believed_up(0, 30.0));
}

TEST(Heartbeat, Validation) {
  EXPECT_THROW(HeartbeatCollector(0, config_3s_2miss()),
               std::invalid_argument);
  HeartbeatCollector::Config bad;
  bad.interval = 0.0;
  EXPECT_THROW(HeartbeatCollector(1, bad), std::invalid_argument);
}

// Dead declaration fires at *exactly* down_since + dead_timeout, in
// message mode as in transition mode: elapsed == timeout is dead.
TEST(Heartbeat, MessageModeDeadAtExactTimeoutBoundary) {
  HeartbeatCollector::Config config = config_3s_2miss();
  config.dead_timeout = 10.0;
  HeartbeatCollector hb(1, config);
  hb.observe_heartbeat(0, 0.0);
  // Silence: believed down from 6 (latency 2*3); dead at exactly 16.
  EXPECT_TRUE(hb.believed_up(0, 5.9));
  EXPECT_FALSE(hb.believed_dead(0, 15.999999));
  EXPECT_TRUE(hb.believed_dead(0, 16.0));
}

// Property: a stream of delivered/missed beats must produce the same
// believed-up / believed-dead verdicts as the transition-level oracle
// that is told exactly when each silence begins and ends. Ground
// truth: a node that misses tick k went down right after its beat at
// tick k-1, so the oracle's notify_down lands at that last beat.
TEST(Heartbeat, PropertyMessageModeMatchesTransitionOracle) {
  adapt::common::Rng rng(1234);
  for (int trial = 0; trial < 64; ++trial) {
    HeartbeatCollector::Config config;
    config.interval = 3.0;
    config.miss_threshold = 1 + static_cast<int>(rng.uniform_index(3));
    config.dead_timeout = 5.0 + 10.0 * rng.uniform();
    HeartbeatCollector message(1, config);
    HeartbeatCollector oracle(1, config);

    const int ticks = 40;
    std::vector<bool> up(ticks);
    up[0] = true;  // both sides need one beat to arm detection
    for (int k = 1; k < ticks; ++k) up[k] = rng.uniform() < 0.7;

    for (int k = 0; k < ticks; ++k) {
      const double now = k * config.interval;
      if (up[k]) {
        message.observe_heartbeat(0, now);
        if (k > 0 && !up[k - 1]) oracle.notify_up(0, now);
      }
      // Down transition right after this delivered beat (or after the
      // final beat of the sequence: silence extends past the horizon).
      if (up[k] && (k + 1 == ticks || !up[k + 1])) {
        oracle.notify_down(0, now);
      }
      // Probe strictly inside the interval, away from event times.
      for (int q = 0; q < 3; ++q) {
        const double probe =
            now + config.interval * (0.05 + 0.9 * rng.uniform());
        ASSERT_EQ(message.believed_up(0, probe),
                  oracle.believed_up(0, probe))
            << "trial " << trial << " tick " << k << " probe " << probe;
        ASSERT_EQ(message.believed_dead(0, probe),
                  oracle.believed_dead(0, probe))
            << "trial " << trial << " tick " << k << " probe " << probe;
      }
    }
    // Far past the horizon both must have declared the silence dead.
    const double tail = ticks * config.interval + 100.0;
    ASSERT_TRUE(message.believed_dead(0, tail)) << "trial " << trial;
    ASSERT_TRUE(oracle.believed_dead(0, tail)) << "trial " << trial;
  }
}

}  // namespace
