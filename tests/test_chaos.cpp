// Chaos-invariant harness plus the two seeded gray-failure acceptance
// scenarios: a false-positive dead declaration (partitioned node that
// never went down) reviving cleanly, and a corrupt local read that
// recovers from the surviving replica and re-replicates back to target.
#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "hdfs/namenode.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "placement/random_policy.h"
#include "sim/chaos.h"
#include "sim/mapreduce_sim.h"

namespace {

using namespace adapt;
using namespace adapt::sim;
using cluster::Cluster;
using cluster::NodeSpec;
using common::kMiB;
using common::mbps;

Cluster bare_cluster(std::size_t n, double bps = mbps(8)) {
  Cluster cluster;
  cluster.block_size_bytes = 4 * kMiB;
  cluster.nodes.resize(n);
  for (NodeSpec& node : cluster.nodes) {
    node.uplink_bps = bps;
    node.downlink_bps = bps;
  }
  return cluster;
}

// Places `blocks` blocks with explicit replica lists.
hdfs::FileId plant_file(hdfs::NameNode& nn,
                        const std::vector<std::vector<cluster::NodeIndex>>&
                            replicas) {
  common::Rng rng(1);
  const hdfs::FileId id = nn.create_file(
      "f", static_cast<std::uint32_t>(replicas.size()),
      static_cast<int>(replicas[0].size()),
      placement::make_random_policy(nn.node_count()), rng);
  for (std::size_t b = 0; b < replicas.size(); ++b) {
    const hdfs::BlockId block = nn.file(id).blocks[b];
    const auto old_replicas = nn.block(block).replicas;
    for (const auto node : old_replicas) nn.remove_replica(block, node);
    for (const auto node : replicas[b]) nn.add_replica(block, node);
  }
  return id;
}

// Twenty randomized fault schedules, each checked against the full
// invariant set (metadata consistency, loss honesty, accounting,
// byte-identical re-run). The aggregate counters prove the sweep
// actually exercised every gray path rather than passing vacuously.
TEST(Chaos, TwentyRandomSchedulesHoldInvariants) {
  ChaosConfig config;
  std::uint64_t false_dead = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t corrupt_reads = 0;
  std::uint64_t scanned = 0;
  std::uint64_t safe_entries = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    config.seed = seed;
    const ChaosReport report = run_chaos(config);
    for (const ChaosViolation& v : report.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v.invariant << ": "
                    << v.detail;
    }
    false_dead += report.job.false_dead_declarations;
    corrupted += report.job.replicas_corrupted;
    corrupt_reads += report.job.corrupt_reads;
    scanned += report.job.blocks_scanned;
    safe_entries += report.job.safe_mode_entries;
  }
  EXPECT_GE(false_dead, 1u);
  EXPECT_GE(corrupted, 1u);
  EXPECT_GE(corrupt_reads, 1u);
  EXPECT_GE(scanned, 1u);
  EXPECT_GE(safe_entries, 1u);
}

// Node 0 is partitioned from the NameNode at t=4.5 while staying up the
// whole time. Lost beats cross the dead timeout, the NameNode falsely
// declares it dead and writes off its replicas; the first beat after
// the heal must revive it with its replicas restored and nothing lost.
TEST(Chaos, FalsePositiveDeadDeclarationRevivesCleanly) {
  Cluster cluster = bare_cluster(6);
  hdfs::NameNode nn(6);
  common::Rng place_rng(7);
  const auto file = nn.create_file(
      "f", 24, 2, placement::make_random_policy(6), place_rng);

  obs::EventTracer tracer;
  SimJobConfig config;
  config.gamma = 8.0;
  config.allow_origin_fetch = false;
  config.tracer = &tracer;
  config.churn.enabled = true;
  config.churn.heartbeat_interval = 1.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.dead_timeout = 3.0;
  SimJobConfig::ChurnConfig::Partition part;
  part.at = 4.5;
  part.heal_at = 20.5;
  part.nodes = {0};
  config.churn.partitions.push_back(part);

  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.false_dead_declarations, 1u);
  EXPECT_EQ(r.blocks_lost, 0u);
  EXPECT_EQ(r.tasks_lost, 0u);
  // The node was never actually down and must be back in the pool.
  EXPECT_FALSE(nn.is_dead(0));
  for (const hdfs::BlockId block : nn.file(file).blocks) {
    const auto& replicas = nn.block(block).replicas;
    EXPECT_GE(replicas.size(), 1u);
    EXPECT_LE(replicas.size(), 2u);
  }

  const obs::ReplaySummary replay = obs::replay(tracer.take_records());
  EXPECT_EQ(replay.partitions_started, 1u);
  EXPECT_EQ(replay.partitions_healed, 1u);
  EXPECT_EQ(replay.false_dead_declarations, 1u);
  EXPECT_GE(replay.revived_replicas_restored + replay.revived_replicas_trimmed,
            1u);
}

// Both second-wave blocks carry a corrupt replica on node 0. Whichever
// task lands there fails its checksum on the local read, skips to the
// surviving replica on node 1, and re-replication restores the trimmed
// copy — the job finishes with zero loss and every block back at
// target replication.
TEST(Chaos, CorruptReadRecoversFromSurvivingReplica) {
  Cluster cluster = bare_cluster(2);
  hdfs::NameNode nn(2);
  const auto file = plant_file(nn, {{0, 1}, {0, 1}, {0, 1}, {0, 1}});

  obs::EventTracer tracer;
  SimJobConfig config;
  config.gamma = 10.0;
  config.speculation = false;
  config.allow_origin_fetch = false;
  config.tracer = &tracer;
  config.churn.enabled = true;
  config.churn.heartbeat_interval = 1.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.corruptions.push_back({2.0, 2, 0});
  config.churn.corruptions.push_back({2.5, 3, 0});

  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.replicas_corrupted, 2u);
  EXPECT_EQ(r.corrupt_reads, 1u);
  EXPECT_EQ(r.blocks_lost, 0u);
  EXPECT_EQ(r.tasks_lost, 0u);
  EXPECT_GE(r.rereplications, 1u);
  // The undetected corruption (its task ran on node 1) is still listed.
  EXPECT_EQ(r.corrupt_remaining.size(), 1u);
  for (const hdfs::BlockId block : nn.file(file).blocks) {
    EXPECT_EQ(nn.block(block).replicas.size(), 2u);
  }

  const obs::ReplaySummary replay = obs::replay(tracer.take_records());
  EXPECT_EQ(replay.replicas_corrupted, 2u);
  EXPECT_EQ(replay.corrupt_reads, 1u);
  EXPECT_EQ(replay.corrupt_reads_scan, 0u);
}

// Partitioning half the fleet trips the believed-dead fraction past the
// safe-mode threshold inside one detection window: the NameNode defers
// the mass write-off, the heal delivers beats that rescue every
// deferred node, and safe mode exits healed with no replicas dropped
// for the deferred set.
TEST(Chaos, SafeModeDefersMassWriteoffDuringPartition) {
  Cluster cluster = bare_cluster(12);
  hdfs::NameNode nn(12);
  // One holder inside the partitioned half, one outside, so the few
  // declarations that land before safe mode trips can never strand a
  // block with zero believed-live replicas.
  std::vector<std::vector<cluster::NodeIndex>> layout;
  for (cluster::NodeIndex b = 0; b < 36; ++b) {
    layout.push_back({b % 6, 6 + (b + 1) % 6});
  }
  const auto file = plant_file(nn, layout);

  obs::EventTracer tracer;
  SimJobConfig config;
  config.gamma = 10.0;
  config.allow_origin_fetch = false;
  config.tracer = &tracer;
  config.churn.enabled = true;
  config.churn.heartbeat_interval = 1.0;
  config.churn.heartbeat_miss_threshold = 2;
  config.churn.dead_timeout = 3.0;
  config.churn.safe_mode_threshold = 0.25;
  config.churn.safe_mode_hold = 30.0;
  SimJobConfig::ChurnConfig::Partition part;
  part.at = 4.5;
  part.heal_at = 20.5;
  part.nodes = {0, 1, 2, 3, 4, 5};
  config.churn.partitions.push_back(part);

  MapReduceSimulation sim(cluster, nn, file, config);
  const JobResult r = sim.run();

  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.safe_mode_entries, 1u);
  // The first declarations land before the window fraction crosses the
  // threshold; everyone after is deferred, then rescued on the heal.
  EXPECT_GE(r.safe_mode_deferrals, 3u);
  EXPECT_EQ(r.safe_mode_rescues, r.safe_mode_deferrals);
  EXPECT_GE(r.false_dead_declarations, 1u);
  EXPECT_EQ(r.blocks_lost, 0u);
  for (cluster::NodeIndex n = 0; n < 6; ++n) EXPECT_FALSE(nn.is_dead(n));

  const obs::ReplaySummary replay = obs::replay(tracer.take_records());
  EXPECT_EQ(replay.safe_mode_entries, 1u);
  EXPECT_EQ(replay.safe_mode_exits, 1u);
  EXPECT_EQ(replay.safe_mode_healed, 1u);
  EXPECT_EQ(replay.safe_mode_writeoffs, 0u);
}

}  // namespace
