// Perfetto/Chrome trace-event exporter: structural validity of the
// emitted JSON (balanced nesting, required keys, known phase codes),
// the track/slice mapping, and byte-identity across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "core/adapt.h"
#include "obs/perfetto.h"
#include "obs/trace.h"
#include "runner/runner.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

// Minimal structural JSON check: every brace/bracket outside a string
// balances and the document closes exactly once. The exporter builds
// the text by concatenation, so this is the mistake class to guard.
bool json_structure_ok(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

core::ExperimentConfig churn_config(const cluster::Cluster& cl,
                                    std::uint64_t seed) {
  const workload::Workload w = workload::emulation_workload();
  core::ExperimentConfig config;
  config.blocks = w.blocks_for(cl.size());
  config.job.gamma = w.gamma();
  config.policy = core::PolicyKind::kAdapt;
  config.replication = 2;
  config.seed = seed;
  config.job.allow_origin_fetch = false;
  config.job.churn.enabled = true;
  config.job.churn.burst_at = 5.0;
  config.job.churn.burst_fraction = 0.4;
  config.job.churn.dead_timeout = 10.0;
  config.job.churn.rereplication.enabled = true;
  config.obs.trace = true;
  return config;
}

cluster::Cluster small_cluster() {
  cluster::EmulationConfig emu;
  emu.node_count = 24;
  return cluster::emulated_cluster(emu);
}

std::string perfetto_json_for(const obs::RunObservations& run) {
  std::vector<obs::RunObservations> runs;
  runs.push_back(run);
  return obs::perfetto_json(runs);
}

TEST(Perfetto, ExportIsStructurallyValidTraceEventJson) {
  const cluster::Cluster cl = small_cluster();
  const core::ExperimentResult result =
      core::run_experiment(cl, churn_config(cl, 3));
  ASSERT_FALSE(result.obs.records.empty());

  const std::string json = perfetto_json_for(result.obs);
  EXPECT_TRUE(json_structure_ok(json)) << "unbalanced JSON";
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\": \"ms\",\n", 0), 0u);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // No trailing comma before the closing bracket.
  EXPECT_EQ(json.find(",\n]}"), std::string::npos);

  // Every event line carries a known phase code and the required keys.
  std::size_t events = 0;
  std::size_t slices = 0;
  std::size_t metadata = 0;
  std::size_t pos = 0;
  while ((pos = json.find("{\"ph\": \"", pos)) != std::string::npos) {
    const char ph = json[pos + 8];
    EXPECT_TRUE(ph == 'X' || ph == 'M' || ph == 's' || ph == 'f' ||
                ph == 'i')
        << "unknown phase " << ph;
    const std::size_t line_end = json.find('\n', pos);
    const std::string line = json.substr(pos, line_end - pos);
    EXPECT_NE(line.find("\"pid\": "), std::string::npos);
    EXPECT_NE(line.find("\"tid\": "), std::string::npos);
    if (ph != 'M') {
      EXPECT_NE(line.find("\"ts\": "), std::string::npos);
    }
    if (ph == 'X') {
      EXPECT_NE(line.find("\"dur\": "), std::string::npos);
      ++slices;
    }
    if (ph == 'M') ++metadata;
    ++events;
    pos = line_end;
  }
  EXPECT_GT(events, 0u);
  EXPECT_GT(slices, 0u);  // attempts render as X slices
  // One process_name + one thread_name per node + the control track.
  EXPECT_EQ(metadata, 1u + cl.size() + 1u);
  EXPECT_NE(json.find("\"args\": {\"name\": \"control\"}"),
            std::string::npos);
  // A churn run with repairs produces flow arrows bound by id.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
}

TEST(Perfetto, EmptyRunsStillProduceValidJson) {
  const std::string json = obs::perfetto_json({});
  EXPECT_TRUE(json_structure_ok(json));
  EXPECT_EQ(json, "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n]}\n");
}

TEST(Perfetto, ExportIsByteIdenticalAcrossThreadCounts) {
  const cluster::Cluster cl = small_cluster();
  const core::ExperimentConfig config = churn_config(cl, 7);

  runner::ExperimentRunner serial(1);
  runner::ExperimentRunner pooled(4);
  std::vector<obs::RunObservations> obs_serial;
  std::vector<obs::RunObservations> obs_pooled;
  (void)serial.run_replications(cl, config, 4, &obs_serial);
  (void)pooled.run_replications(cl, config, 4, &obs_pooled);

  const std::string a = obs::perfetto_json(obs_serial);
  const std::string b = obs::perfetto_json(obs_pooled);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Each run renders as its own process (pid = run index).
  EXPECT_NE(a.find("\"args\": {\"name\": \"run 3\"}"), std::string::npos);
}

}  // namespace
