#include <gtest/gtest.h>

#include "workload/sweeps.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;
using namespace adapt::workload;

TEST(Workload, GammaScalesWithBlockSize) {
  Workload w = simulation_workload();
  EXPECT_DOUBLE_EQ(w.gamma(), 12.0);  // Table 4: 12 s per 64 MB block
  w.block_size_bytes = 128 * common::kMiB;
  EXPECT_DOUBLE_EQ(w.gamma(), 24.0);
  w.block_size_bytes = 16 * common::kMiB;
  EXPECT_DOUBLE_EQ(w.gamma(), 3.0);
}

TEST(Workload, BlockCounts) {
  EXPECT_EQ(emulation_workload().blocks_for(128), 2560u);   // 20 per node
  EXPECT_EQ(simulation_workload().blocks_for(1024), 102400u);
}

TEST(Sweeps, MatchPaperGrids) {
  EXPECT_EQ(interrupted_ratio_sweep(), (std::vector<double>{0.25, 0.5, 0.75}));
  const auto bw = bandwidth_sweep();
  ASSERT_EQ(bw.size(), 4u);
  EXPECT_DOUBLE_EQ(bw.front(), common::mbps(4));
  EXPECT_DOUBLE_EQ(bw.back(), common::mbps(32));
  EXPECT_EQ(emulation_node_sweep(),
            (std::vector<std::size_t>{32, 64, 128, 256}));
  const auto blocks = block_size_sweep();
  EXPECT_EQ(blocks.front(), 16 * common::kMiB);
  EXPECT_EQ(blocks.back(), 256 * common::kMiB);
  EXPECT_EQ(simulation_node_sweep().back(), 16384u);
}

TEST(Sweeps, DefaultsMatchTables) {
  const auto emu = emulation_defaults();
  EXPECT_EQ(emu.node_count, 128u);            // Table 3
  EXPECT_DOUBLE_EQ(emu.interrupted_ratio, 0.5);
  EXPECT_DOUBLE_EQ(emu.bandwidth_bps, common::mbps(8));
  const auto sim = simulation_defaults();
  EXPECT_EQ(sim.node_count, 8192u);           // Table 4 ("8196" typo)
  EXPECT_DOUBLE_EQ(sim.gamma, 12.0);
  EXPECT_DOUBLE_EQ(sim.tasks_per_node, 100.0);
}

}  // namespace
