#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "availability/distribution.h"
#include "common/stats.h"

namespace {

using namespace adapt::avail;
using adapt::common::Rng;
using adapt::common::RunningStats;

// Property: every distribution's sample moments converge to its declared
// mean()/variance().
class DistributionMoments
    : public ::testing::TestWithParam<std::pair<const char*, DistributionPtr>> {
};

TEST_P(DistributionMoments, SampleMomentsMatchDeclared) {
  const DistributionPtr dist = GetParam().second;
  Rng rng(2024);
  RunningStats stats;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = dist->sample(rng);
    ASSERT_GE(x, 0.0) << dist->describe();
    stats.add(x);
  }
  const double mean = dist->mean();
  EXPECT_NEAR(stats.mean(), mean, std::max(0.02 * mean, 1e-9))
      << dist->describe();
  const double sd = std::sqrt(dist->variance());
  EXPECT_NEAR(stats.stddev(), sd, std::max(0.1 * sd, 1e-9))
      << dist->describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMoments,
    ::testing::Values(
        std::make_pair("exp", exponential(4.0)),
        std::make_pair("det", deterministic(8.0)),
        std::make_pair("lognormal", lognormal_mean_cov(100.0, 1.5)),
        std::make_pair("weibull", weibull(1.5, 10.0)),
        std::make_pair("pareto", pareto_mean_shape(50.0, 3.5)),
        std::make_pair("uniform", uniform_range(2.0, 10.0))),
    [](const auto& info) { return info.param.first; });

TEST(Distribution, DeterministicIsExact) {
  Rng rng(1);
  const DistributionPtr d = deterministic(8.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d->sample(rng), 8.0);
  EXPECT_DOUBLE_EQ(d->variance(), 0.0);
}

TEST(Distribution, LognormalHitsTargetCov) {
  const DistributionPtr d = lognormal_mean_cov(109380.0, 7.3869);
  EXPECT_DOUBLE_EQ(d->mean(), 109380.0);
  EXPECT_NEAR(std::sqrt(d->variance()) / d->mean(), 7.3869, 1e-9);
}

TEST(Distribution, EmpiricalResamples) {
  Rng rng(3);
  const DistributionPtr d = empirical({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d->mean(), 2.0);
  EXPECT_DOUBLE_EQ(d->variance(), 1.0);
  for (int i = 0; i < 100; ++i) {
    const double x = d->sample(rng);
    EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 3.0);
  }
}

TEST(Distribution, ParameterValidation) {
  EXPECT_THROW(exponential(0.0), std::invalid_argument);
  EXPECT_THROW(exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(deterministic(-1.0), std::invalid_argument);
  EXPECT_THROW(lognormal_mean_cov(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(pareto_mean_shape(10.0, 2.0), std::invalid_argument);
  EXPECT_THROW(uniform_range(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(empirical({}), std::invalid_argument);
  EXPECT_THROW(empirical({-1.0}), std::invalid_argument);
}

TEST(Distribution, ParseRoundTrips) {
  Rng rng(4);
  EXPECT_NEAR(parse_distribution("exp:4")->mean(), 4.0, 1e-12);
  EXPECT_NEAR(parse_distribution("det:8")->mean(), 8.0, 1e-12);
  EXPECT_NEAR(parse_distribution("lognormal:100:2")->mean(), 100.0, 1e-12);
  EXPECT_GT(parse_distribution("weibull:0.5:100")->mean(), 0.0);
  EXPECT_NEAR(parse_distribution("pareto:100:2.5")->mean(), 100.0, 1e-9);
  EXPECT_NEAR(parse_distribution("uniform:2:10")->mean(), 6.0, 1e-12);
}

TEST(Distribution, ParseErrors) {
  EXPECT_THROW(parse_distribution("exp"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("exp:1:2"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("nope:1"), std::invalid_argument);
  EXPECT_THROW(parse_distribution("weibull:1"), std::invalid_argument);
}

}  // namespace
