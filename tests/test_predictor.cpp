#include <gtest/gtest.h>

#include <stdexcept>

#include "availability/predictor.h"

namespace {

using namespace adapt::avail;

TEST(Predictor, UsesPriorGammaUntilTaught) {
  PerformancePredictor p(4, 8.0);
  EXPECT_DOUBLE_EQ(p.gamma(), 8.0);
  p.record_task_length(10.0);
  p.record_task_length(14.0);
  EXPECT_DOUBLE_EQ(p.gamma(), 12.0);
}

TEST(Predictor, DedicatedNodesPredictGamma) {
  PerformancePredictor p(3, 8.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(p.expected_task_time(i), 8.0);
  }
}

TEST(Predictor, HonorsPerNodeParameters) {
  PerformancePredictor p(2, 10.0);
  p.set_params(1, {0.1, 4.0});
  EXPECT_DOUBLE_EQ(p.expected_task_time(0), 10.0);
  EXPECT_NEAR(p.expected_task_time(1),
              expected_task_time({0.1, 4.0}, 10.0), 1e-12);
  const auto all = p.expected_task_times();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0], 10.0);
  EXPECT_GT(all[1], all[0]);
}

TEST(Predictor, GammaUpdatesPropagate) {
  PerformancePredictor p(1, 10.0);
  p.set_params(0, {0.05, 4.0});
  const double before = p.expected_task_time(0);
  p.record_task_length(20.0);  // longer tasks -> longer E[T]
  EXPECT_GT(p.expected_task_time(0), before);
}

TEST(Predictor, Validation) {
  EXPECT_THROW(PerformancePredictor(0, 8.0), std::invalid_argument);
  EXPECT_THROW(PerformancePredictor(2, 0.0), std::invalid_argument);
  PerformancePredictor p(2, 8.0);
  EXPECT_THROW(p.set_params(7, {}), std::out_of_range);
  EXPECT_THROW(p.record_task_length(0.0), std::invalid_argument);
}

}  // namespace
