#include <gtest/gtest.h>

#include "sim/scheduler.h"

namespace {

using namespace adapt::sim;
using adapt::cluster::NodeIndex;

TaskBoard two_node_board() {
  // Tasks 0,1 homed on node 0; task 2 on node 1; task 3 on both.
  return TaskBoard({{0}, {0}, {1}, {0, 1}}, 2);
}

TEST(TaskBoard, InitialState) {
  TaskBoard board = two_node_board();
  EXPECT_EQ(board.task_count(), 4u);
  EXPECT_EQ(board.pending_count(), 4u);
  EXPECT_FALSE(board.all_done());
  EXPECT_TRUE(board.is_local_to(3, 0));
  EXPECT_TRUE(board.is_local_to(3, 1));
  EXPECT_FALSE(board.is_local_to(0, 1));
}

TEST(TaskBoard, TakeLocalPrefersHomeTasks) {
  TaskBoard board = two_node_board();
  const auto t = board.take_local(0);
  ASSERT_TRUE(t);
  EXPECT_TRUE(board.is_local_to(*t, 0));
  board.mark_running(*t);
  EXPECT_EQ(board.pending_count(), 3u);
}

TEST(TaskBoard, TakeLocalExhausts) {
  TaskBoard board = two_node_board();
  int taken = 0;
  while (auto t = board.take_local(0)) {
    board.mark_running(*t);
    ++taken;
  }
  EXPECT_EQ(taken, 3);  // tasks 0, 1, 3
  EXPECT_TRUE(board.take_local(1).has_value());  // task 2 remains
}

TEST(TaskBoard, LifecycleTransitions) {
  TaskBoard board = two_node_board();
  board.mark_running(0);
  EXPECT_EQ(board.status(0), TaskStatus::kRunning);
  board.mark_pending(0);
  EXPECT_EQ(board.status(0), TaskStatus::kPending);
  board.mark_running(0);
  board.mark_done(0);
  EXPECT_EQ(board.status(0), TaskStatus::kDone);
  EXPECT_EQ(board.done_count(), 1u);
  EXPECT_THROW(board.mark_done(0), std::logic_error);
  EXPECT_THROW(board.mark_running(0), std::logic_error);
}

TEST(TaskBoard, RePendingTaskIsLocallyVisibleAgain) {
  TaskBoard board = two_node_board();
  // Drain node 0's local view.
  std::vector<TaskId> taken;
  while (auto t = board.take_local(0)) {
    board.mark_running(*t);
    taken.push_back(*t);
  }
  // One comes back (interrupted): node 0 must see it again.
  board.mark_pending(taken[0]);
  const auto again = board.take_local(0);
  ASSERT_TRUE(again);
  EXPECT_EQ(*again, taken[0]);
}

TEST(TaskBoard, RemoteTakeParksUnreachableTasks) {
  TaskBoard board = two_node_board();
  // Only task 2 (homed on node 1) is reachable; the scan parks the
  // unreachable tasks it walks over and stops at the hit.
  const auto t = board.take_remote(
      10.0, [&board](TaskId task) { return board.is_local_to(task, 1); });
  ASSERT_TRUE(t);
  EXPECT_TRUE(board.is_local_to(*t, 1));
  board.mark_running(*t);
  // Nothing reachable remains: the rest gets parked.
  EXPECT_FALSE(board.take_remote(11.0, [](TaskId) { return false; }));
  // Parked tasks ripen by age (parked at 10 and 11).
  EXPECT_FALSE(board.take_stalled(11.0, 60.0));
  const auto ripe = board.take_stalled(100.0, 60.0);
  ASSERT_TRUE(ripe);
  board.mark_running(*ripe);
}

TEST(TaskBoard, ReviveStalledRestoresRemoteVisibility) {
  TaskBoard board({{0}, {0}}, 2);
  // Park both tasks (no live replica).
  EXPECT_FALSE(board.take_remote(0.0, [](TaskId) { return false; }));
  EXPECT_EQ(board.revive_stalled_for(0), 2u);
  // Now reachable again through the global queue.
  EXPECT_TRUE(board.take_remote(1.0, [](TaskId) { return true; }));
}

TEST(TaskBoard, ReparkAfterReviveDoesNotShadowOlderStalledTasks) {
  // Task 0 homed on node 0, task 1 on node 1. Park 0 at t=10, 1 at t=20;
  // node 0 recovers (0 revived) and fails again, re-parking 0 at t=100.
  // The stale t=10 queue entry for task 0 now fronts the stalled queue
  // with a re-stamped park time; it must not hide task 1 (ripe at t=90)
  // nor let task 0 out before its *new* park time ages.
  TaskBoard board({{0}, {1}}, 2);
  // Parks task 0 at t=10 while scanning past it to task 1.
  const auto first = board.take_remote(10.0, [](TaskId t) { return t != 0; });
  ASSERT_TRUE(first);
  EXPECT_EQ(*first, 1u);
  // Put task 1 back and park it at t=20.
  board.mark_running(1);
  board.mark_pending(1);
  EXPECT_FALSE(board.take_remote(20.0, [](TaskId) { return false; }));

  // Node 0 recovers: task 0 revived into the global queue...
  EXPECT_EQ(board.revive_stalled_for(0), 1u);
  // ...then fails again before anyone could run it: re-parked at t=100.
  EXPECT_FALSE(board.take_remote(100.0, [](TaskId) { return false; }));

  // Oldest *live* park is task 1's t=20, not task 0's stale entry.
  const auto park = board.next_stalled_park();
  ASSERT_TRUE(park);
  EXPECT_DOUBLE_EQ(*park, 20.0);

  // At t=90 with min_age 60 only task 1 is ripe (task 0 re-parked at
  // 100); the stale front entry must not block it.
  const auto ripe = board.take_stalled(90.0, 60.0);
  ASSERT_TRUE(ripe);
  EXPECT_EQ(*ripe, 1u);
  board.mark_running(*ripe);

  // Task 0's age is measured from the re-park, not the original park.
  EXPECT_FALSE(board.take_stalled(130.0, 60.0));
  const auto again = board.take_stalled(160.0, 60.0);
  ASSERT_TRUE(again);
  EXPECT_EQ(*again, 0u);
}

TEST(TaskBoard, NextStalledParkReportsOldest) {
  TaskBoard board({{0}, {0}}, 1);
  EXPECT_FALSE(board.next_stalled_park().has_value());
  (void)board.take_remote(5.0, [](TaskId) { return false; });
  const auto park = board.next_stalled_park();
  ASSERT_TRUE(park);
  EXPECT_DOUBLE_EQ(*park, 5.0);
}

TEST(TaskBoard, DoneTasksVanishFromQueues) {
  TaskBoard board = two_node_board();
  board.mark_running(2);
  board.mark_done(2);
  // take_remote must skip the done task.
  int seen = 0;
  while (auto t = board.take_remote(0.0, [](TaskId) { return true; })) {
    EXPECT_NE(*t, 2u);
    board.mark_running(*t);
    ++seen;
  }
  EXPECT_EQ(seen, 3);
}

TEST(TaskBoard, AllDone) {
  TaskBoard board({{0}}, 1);
  board.mark_running(0);
  board.mark_done(0);
  EXPECT_TRUE(board.all_done());
}

}  // namespace
