
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alias_sampler.cpp" "tests/CMakeFiles/adapt_tests.dir/test_alias_sampler.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_alias_sampler.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/adapt_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_distribution.cpp" "tests/CMakeFiles/adapt_tests.dir/test_distribution.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_distribution.cpp.o.d"
  "/root/repo/tests/test_estimator.cpp" "tests/CMakeFiles/adapt_tests.dir/test_estimator.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_estimator.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/adapt_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_hash_table.cpp" "tests/CMakeFiles/adapt_tests.dir/test_hash_table.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_hash_table.cpp.o.d"
  "/root/repo/tests/test_hdfs.cpp" "tests/CMakeFiles/adapt_tests.dir/test_hdfs.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_hdfs.cpp.o.d"
  "/root/repo/tests/test_heartbeat.cpp" "tests/CMakeFiles/adapt_tests.dir/test_heartbeat.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_heartbeat.cpp.o.d"
  "/root/repo/tests/test_injector.cpp" "tests/CMakeFiles/adapt_tests.dir/test_injector.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_injector.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/adapt_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interruption_model.cpp" "tests/CMakeFiles/adapt_tests.dir/test_interruption_model.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_interruption_model.cpp.o.d"
  "/root/repo/tests/test_model_validation.cpp" "tests/CMakeFiles/adapt_tests.dir/test_model_validation.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_model_validation.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/adapt_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_overhead.cpp" "tests/CMakeFiles/adapt_tests.dir/test_overhead.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_overhead.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/adapt_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_predictor.cpp" "tests/CMakeFiles/adapt_tests.dir/test_predictor.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_predictor.cpp.o.d"
  "/root/repo/tests/test_reduce_phase.cpp" "tests/CMakeFiles/adapt_tests.dir/test_reduce_phase.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_reduce_phase.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/adapt_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/adapt_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/adapt_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/adapt_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table_config.cpp" "tests/CMakeFiles/adapt_tests.dir/test_table_config.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_table_config.cpp.o.d"
  "/root/repo/tests/test_task_board.cpp" "tests/CMakeFiles/adapt_tests.dir/test_task_board.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_task_board.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/adapt_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/adapt_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/adapt_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/adapt_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/adapt_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_availability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
