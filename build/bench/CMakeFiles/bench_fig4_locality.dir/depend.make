# Empty dependencies file for bench_fig4_locality.
# This may be replaced when dependencies are built.
