file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_locality.dir/bench_fig4_locality.cpp.o"
  "CMakeFiles/bench_fig4_locality.dir/bench_fig4_locality.cpp.o.d"
  "bench_fig4_locality"
  "bench_fig4_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
