file(REMOVE_RECURSE
  "CMakeFiles/storage_efficiency.dir/storage_efficiency.cpp.o"
  "CMakeFiles/storage_efficiency.dir/storage_efficiency.cpp.o.d"
  "storage_efficiency"
  "storage_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
