# Empty dependencies file for storage_efficiency.
# This may be replaced when dependencies are built.
