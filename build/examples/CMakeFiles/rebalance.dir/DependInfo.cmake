
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/rebalance.cpp" "examples/CMakeFiles/rebalance.dir/rebalance.cpp.o" "gcc" "examples/CMakeFiles/rebalance.dir/rebalance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adapt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_availability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
