file(REMOVE_RECURSE
  "CMakeFiles/rebalance.dir/rebalance.cpp.o"
  "CMakeFiles/rebalance.dir/rebalance.cpp.o.d"
  "rebalance"
  "rebalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
