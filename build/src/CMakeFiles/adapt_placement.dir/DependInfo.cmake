
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/adapt_policy.cpp" "src/CMakeFiles/adapt_placement.dir/placement/adapt_policy.cpp.o" "gcc" "src/CMakeFiles/adapt_placement.dir/placement/adapt_policy.cpp.o.d"
  "/root/repo/src/placement/alias_sampler.cpp" "src/CMakeFiles/adapt_placement.dir/placement/alias_sampler.cpp.o" "gcc" "src/CMakeFiles/adapt_placement.dir/placement/alias_sampler.cpp.o.d"
  "/root/repo/src/placement/capped_policy.cpp" "src/CMakeFiles/adapt_placement.dir/placement/capped_policy.cpp.o" "gcc" "src/CMakeFiles/adapt_placement.dir/placement/capped_policy.cpp.o.d"
  "/root/repo/src/placement/hash_table.cpp" "src/CMakeFiles/adapt_placement.dir/placement/hash_table.cpp.o" "gcc" "src/CMakeFiles/adapt_placement.dir/placement/hash_table.cpp.o.d"
  "/root/repo/src/placement/naive_policy.cpp" "src/CMakeFiles/adapt_placement.dir/placement/naive_policy.cpp.o" "gcc" "src/CMakeFiles/adapt_placement.dir/placement/naive_policy.cpp.o.d"
  "/root/repo/src/placement/random_policy.cpp" "src/CMakeFiles/adapt_placement.dir/placement/random_policy.cpp.o" "gcc" "src/CMakeFiles/adapt_placement.dir/placement/random_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adapt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_availability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
