file(REMOVE_RECURSE
  "CMakeFiles/adapt_placement.dir/placement/adapt_policy.cpp.o"
  "CMakeFiles/adapt_placement.dir/placement/adapt_policy.cpp.o.d"
  "CMakeFiles/adapt_placement.dir/placement/alias_sampler.cpp.o"
  "CMakeFiles/adapt_placement.dir/placement/alias_sampler.cpp.o.d"
  "CMakeFiles/adapt_placement.dir/placement/capped_policy.cpp.o"
  "CMakeFiles/adapt_placement.dir/placement/capped_policy.cpp.o.d"
  "CMakeFiles/adapt_placement.dir/placement/hash_table.cpp.o"
  "CMakeFiles/adapt_placement.dir/placement/hash_table.cpp.o.d"
  "CMakeFiles/adapt_placement.dir/placement/naive_policy.cpp.o"
  "CMakeFiles/adapt_placement.dir/placement/naive_policy.cpp.o.d"
  "CMakeFiles/adapt_placement.dir/placement/random_policy.cpp.o"
  "CMakeFiles/adapt_placement.dir/placement/random_policy.cpp.o.d"
  "libadapt_placement.a"
  "libadapt_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
