# Empty dependencies file for adapt_placement.
# This may be replaced when dependencies are built.
