file(REMOVE_RECURSE
  "libadapt_placement.a"
)
