# Empty compiler generated dependencies file for adapt_hdfs.
# This may be replaced when dependencies are built.
