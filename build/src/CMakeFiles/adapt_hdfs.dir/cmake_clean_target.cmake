file(REMOVE_RECURSE
  "libadapt_hdfs.a"
)
