file(REMOVE_RECURSE
  "CMakeFiles/adapt_hdfs.dir/hdfs/client.cpp.o"
  "CMakeFiles/adapt_hdfs.dir/hdfs/client.cpp.o.d"
  "CMakeFiles/adapt_hdfs.dir/hdfs/datanode.cpp.o"
  "CMakeFiles/adapt_hdfs.dir/hdfs/datanode.cpp.o.d"
  "CMakeFiles/adapt_hdfs.dir/hdfs/namenode.cpp.o"
  "CMakeFiles/adapt_hdfs.dir/hdfs/namenode.cpp.o.d"
  "libadapt_hdfs.a"
  "libadapt_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
