# Empty dependencies file for adapt_common.
# This may be replaced when dependencies are built.
