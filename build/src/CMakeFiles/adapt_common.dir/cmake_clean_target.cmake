file(REMOVE_RECURSE
  "libadapt_common.a"
)
