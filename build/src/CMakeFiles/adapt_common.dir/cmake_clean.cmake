file(REMOVE_RECURSE
  "CMakeFiles/adapt_common.dir/common/config.cpp.o"
  "CMakeFiles/adapt_common.dir/common/config.cpp.o.d"
  "CMakeFiles/adapt_common.dir/common/log.cpp.o"
  "CMakeFiles/adapt_common.dir/common/log.cpp.o.d"
  "CMakeFiles/adapt_common.dir/common/rng.cpp.o"
  "CMakeFiles/adapt_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/adapt_common.dir/common/stats.cpp.o"
  "CMakeFiles/adapt_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/adapt_common.dir/common/table.cpp.o"
  "CMakeFiles/adapt_common.dir/common/table.cpp.o.d"
  "CMakeFiles/adapt_common.dir/common/units.cpp.o"
  "CMakeFiles/adapt_common.dir/common/units.cpp.o.d"
  "libadapt_common.a"
  "libadapt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
