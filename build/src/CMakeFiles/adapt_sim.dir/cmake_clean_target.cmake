file(REMOVE_RECURSE
  "libadapt_sim.a"
)
