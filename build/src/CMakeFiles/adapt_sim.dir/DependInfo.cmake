
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/adapt_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/adapt_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/injector.cpp" "src/CMakeFiles/adapt_sim.dir/sim/injector.cpp.o" "gcc" "src/CMakeFiles/adapt_sim.dir/sim/injector.cpp.o.d"
  "/root/repo/src/sim/mapreduce_sim.cpp" "src/CMakeFiles/adapt_sim.dir/sim/mapreduce_sim.cpp.o" "gcc" "src/CMakeFiles/adapt_sim.dir/sim/mapreduce_sim.cpp.o.d"
  "/root/repo/src/sim/overhead.cpp" "src/CMakeFiles/adapt_sim.dir/sim/overhead.cpp.o" "gcc" "src/CMakeFiles/adapt_sim.dir/sim/overhead.cpp.o.d"
  "/root/repo/src/sim/reduce_phase.cpp" "src/CMakeFiles/adapt_sim.dir/sim/reduce_phase.cpp.o" "gcc" "src/CMakeFiles/adapt_sim.dir/sim/reduce_phase.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/adapt_sim.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/adapt_sim.dir/sim/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adapt_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_availability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
