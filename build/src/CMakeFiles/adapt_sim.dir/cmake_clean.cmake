file(REMOVE_RECURSE
  "CMakeFiles/adapt_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/adapt_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/sim/injector.cpp.o"
  "CMakeFiles/adapt_sim.dir/sim/injector.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/sim/mapreduce_sim.cpp.o"
  "CMakeFiles/adapt_sim.dir/sim/mapreduce_sim.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/sim/overhead.cpp.o"
  "CMakeFiles/adapt_sim.dir/sim/overhead.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/sim/reduce_phase.cpp.o"
  "CMakeFiles/adapt_sim.dir/sim/reduce_phase.cpp.o.d"
  "CMakeFiles/adapt_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/adapt_sim.dir/sim/scheduler.cpp.o.d"
  "libadapt_sim.a"
  "libadapt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
