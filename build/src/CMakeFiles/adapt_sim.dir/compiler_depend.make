# Empty compiler generated dependencies file for adapt_sim.
# This may be replaced when dependencies are built.
