# Empty dependencies file for adapt_cluster.
# This may be replaced when dependencies are built.
