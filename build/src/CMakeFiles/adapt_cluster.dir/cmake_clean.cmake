file(REMOVE_RECURSE
  "CMakeFiles/adapt_cluster.dir/cluster/heartbeat.cpp.o"
  "CMakeFiles/adapt_cluster.dir/cluster/heartbeat.cpp.o.d"
  "CMakeFiles/adapt_cluster.dir/cluster/network.cpp.o"
  "CMakeFiles/adapt_cluster.dir/cluster/network.cpp.o.d"
  "CMakeFiles/adapt_cluster.dir/cluster/node.cpp.o"
  "CMakeFiles/adapt_cluster.dir/cluster/node.cpp.o.d"
  "CMakeFiles/adapt_cluster.dir/cluster/topology.cpp.o"
  "CMakeFiles/adapt_cluster.dir/cluster/topology.cpp.o.d"
  "libadapt_cluster.a"
  "libadapt_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
