file(REMOVE_RECURSE
  "libadapt_cluster.a"
)
