# Empty compiler generated dependencies file for adapt_trace.
# This may be replaced when dependencies are built.
