file(REMOVE_RECURSE
  "CMakeFiles/adapt_trace.dir/trace/generator.cpp.o"
  "CMakeFiles/adapt_trace.dir/trace/generator.cpp.o.d"
  "CMakeFiles/adapt_trace.dir/trace/profile.cpp.o"
  "CMakeFiles/adapt_trace.dir/trace/profile.cpp.o.d"
  "CMakeFiles/adapt_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/adapt_trace.dir/trace/trace_io.cpp.o.d"
  "CMakeFiles/adapt_trace.dir/trace/trace_stats.cpp.o"
  "CMakeFiles/adapt_trace.dir/trace/trace_stats.cpp.o.d"
  "libadapt_trace.a"
  "libadapt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
