file(REMOVE_RECURSE
  "libadapt_trace.a"
)
