file(REMOVE_RECURSE
  "libadapt_workload.a"
)
