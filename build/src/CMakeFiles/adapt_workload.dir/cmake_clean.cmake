file(REMOVE_RECURSE
  "CMakeFiles/adapt_workload.dir/workload/sweeps.cpp.o"
  "CMakeFiles/adapt_workload.dir/workload/sweeps.cpp.o.d"
  "CMakeFiles/adapt_workload.dir/workload/terasort.cpp.o"
  "CMakeFiles/adapt_workload.dir/workload/terasort.cpp.o.d"
  "libadapt_workload.a"
  "libadapt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
