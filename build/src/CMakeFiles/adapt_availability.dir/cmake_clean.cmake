file(REMOVE_RECURSE
  "CMakeFiles/adapt_availability.dir/availability/distribution.cpp.o"
  "CMakeFiles/adapt_availability.dir/availability/distribution.cpp.o.d"
  "CMakeFiles/adapt_availability.dir/availability/estimator.cpp.o"
  "CMakeFiles/adapt_availability.dir/availability/estimator.cpp.o.d"
  "CMakeFiles/adapt_availability.dir/availability/interruption_model.cpp.o"
  "CMakeFiles/adapt_availability.dir/availability/interruption_model.cpp.o.d"
  "CMakeFiles/adapt_availability.dir/availability/predictor.cpp.o"
  "CMakeFiles/adapt_availability.dir/availability/predictor.cpp.o.d"
  "libadapt_availability.a"
  "libadapt_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
