# Empty compiler generated dependencies file for adapt_availability.
# This may be replaced when dependencies are built.
