
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/availability/distribution.cpp" "src/CMakeFiles/adapt_availability.dir/availability/distribution.cpp.o" "gcc" "src/CMakeFiles/adapt_availability.dir/availability/distribution.cpp.o.d"
  "/root/repo/src/availability/estimator.cpp" "src/CMakeFiles/adapt_availability.dir/availability/estimator.cpp.o" "gcc" "src/CMakeFiles/adapt_availability.dir/availability/estimator.cpp.o.d"
  "/root/repo/src/availability/interruption_model.cpp" "src/CMakeFiles/adapt_availability.dir/availability/interruption_model.cpp.o" "gcc" "src/CMakeFiles/adapt_availability.dir/availability/interruption_model.cpp.o.d"
  "/root/repo/src/availability/predictor.cpp" "src/CMakeFiles/adapt_availability.dir/availability/predictor.cpp.o" "gcc" "src/CMakeFiles/adapt_availability.dir/availability/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adapt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
