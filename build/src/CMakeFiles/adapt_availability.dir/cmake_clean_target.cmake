file(REMOVE_RECURSE
  "libadapt_availability.a"
)
