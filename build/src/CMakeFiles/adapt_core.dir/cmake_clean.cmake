file(REMOVE_RECURSE
  "CMakeFiles/adapt_core.dir/core/adapt.cpp.o"
  "CMakeFiles/adapt_core.dir/core/adapt.cpp.o.d"
  "libadapt_core.a"
  "libadapt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
