// Micro-benchmarks (google-benchmark) for the placement machinery — the
// paper claims ADAPT "incurs minor overheads to the existing Hadoop
// framework"; these quantify the NameNode-side costs.
#include <benchmark/benchmark.h>

#include "availability/interruption_model.h"
#include "common/rng.h"
#include "placement/adapt_policy.h"
#include "placement/alias_sampler.h"
#include "placement/hash_table.h"
#include "placement/naive_policy.h"
#include "placement/random_policy.h"

namespace {

using namespace adapt;
using namespace adapt::placement;

std::vector<double> synthetic_expected_times(std::size_t nodes) {
  common::Rng rng(17);
  std::vector<double> et(nodes);
  for (double& v : et) v = 8.0 + rng.uniform() * 72.0;
  return et;
}

// Building Algorithm 1's hash table (buildHashTable): cost per call, as
// paid on every ADAPT-enabled load.
void BM_BuildHashTable(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto blocks = static_cast<std::uint64_t>(state.range(1));
  const auto et = synthetic_expected_times(nodes);
  std::vector<double> weights(nodes);
  for (std::size_t i = 0; i < nodes; ++i) weights[i] = 1.0 / et[i];
  for (auto _ : state) {
    BlockHashTable table(weights, blocks, ChainWeighting::kPaper);
    benchmark::DoNotOptimize(table.cell_count());
  }
  state.SetItemsProcessed(state.iterations() * blocks);
}
BENCHMARK(BM_BuildHashTable)
    ->Args({128, 2560})
    ->Args({1024, 102400})
    ->Args({8192, 819200});

// dataPlacement: one placement decision.
void BM_PlacementDecision(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto policy = make_adapt_policy(synthetic_expected_times(nodes),
                                        nodes * 20);
  const cluster::NodeMask eligible(nodes, true);
  common::Rng rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->choose(eligible, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlacementDecision)->Arg(128)->Arg(1024)->Arg(8192);

void BM_RandomDecision(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto policy = make_random_policy(nodes);
  const cluster::NodeMask eligible(nodes, true);
  common::Rng rng(29);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->choose(eligible, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomDecision)->Arg(128)->Arg(8192);

// Chain-weighting ablation: achieved-share distortion of the paper's
// rate/Omega rule vs exact overlap weighting (reported as counters).
void BM_ChainWeightingDistortion(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto et = synthetic_expected_times(nodes);
  std::vector<double> weights(nodes);
  for (std::size_t i = 0; i < nodes; ++i) weights[i] = 1.0 / et[i];
  const std::uint64_t blocks = nodes * 20;
  double paper_l1 = 0.0;
  double overlap_l1 = 0.0;
  for (auto _ : state) {
    const BlockHashTable paper(weights, blocks, ChainWeighting::kPaper);
    const BlockHashTable overlap(weights, blocks,
                                 ChainWeighting::kOverlap);
    paper_l1 = 0.0;
    overlap_l1 = 0.0;
    const auto pp = paper.selection_probabilities();
    const auto op = overlap.selection_probabilities();
    for (std::size_t i = 0; i < nodes; ++i) {
      paper_l1 += std::abs(pp[i] - paper.shares()[i]);
      overlap_l1 += std::abs(op[i] - overlap.shares()[i]);
    }
    benchmark::DoNotOptimize(paper_l1);
  }
  state.counters["paper_L1_distortion"] = paper_l1;
  state.counters["overlap_L1_distortion"] = overlap_l1;
}
BENCHMARK(BM_ChainWeightingDistortion)->Arg(128)->Arg(1024);

// Alias-method alternative to Algorithm 1's table: exact weights, O(n)
// memory, per-draw cost comparison.
void BM_AliasDecision(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto policy = make_adapt_alias_policy(synthetic_expected_times(nodes));
  const cluster::NodeMask eligible(nodes, true);
  common::Rng rng(31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->choose(eligible, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AliasDecision)->Arg(128)->Arg(8192);

void BM_BuildAliasTable(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto et = synthetic_expected_times(nodes);
  std::vector<double> weights(nodes);
  for (std::size_t i = 0; i < nodes; ++i) weights[i] = 1.0 / et[i];
  for (auto _ : state) {
    AliasSampler sampler(weights);
    benchmark::DoNotOptimize(sampler.size());
  }
}
BENCHMARK(BM_BuildAliasTable)->Arg(128)->Arg(8192);

// Eq. 5 evaluation cost (the Performance Predictor's hot path).
void BM_ExpectedTaskTime(benchmark::State& state) {
  const avail::InterruptionParams params{0.01, 60.0};
  double gamma = 12.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(avail::expected_task_time(params, gamma));
    gamma += 1e-9;  // defeat constant folding
  }
}
BENCHMARK(BM_ExpectedTaskTime);

}  // namespace

BENCHMARK_MAIN();
