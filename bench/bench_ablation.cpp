// Ablations of the design choices DESIGN.md §5 calls out:
//   1. Algorithm 1 chain weighting: paper rate/Omega vs exact overlap.
//   2. The Section IV-C fidelity cap on/off (storage skew vs elapsed).
//   3. Speculative execution on/off.
//   4. Rescue capability: origin re-issue delay sweep — the knob that
//      moves the environment between "cheap re-execution anywhere"
//      (where uniform placement + work stealing is hard to beat) and
//      "interrupted work must wait" (the Section III model's world,
//      where availability-aware placement pays).
//   5. Interruption arrival clock: uptime (fault-injector style) vs
//      absolute time (strict M/G/1).
//
//   ./bench_ablation [--runs R] [--seed S] [--threads T] [--json PATH]
//                    [--trace PATH] [--metrics]
#include <cstdio>

#include "bench_util.h"
#include "cluster/topology.h"
#include "trace/generator.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bench::BenchOptions common_opts =
      bench::bench_options(flags, {.runs = 5, .seed = 99});
  const int runs = common_opts.runs;
  const std::uint64_t seed = common_opts.seed;
  const bench::RunnerOptions& options = common_opts.runner;
  bench::abort_on_unused_flags(flags);

  bench::print_header("Ablations (DESIGN.md §5)",
                      std::to_string(runs) + " runs per point");

  runner::ExperimentRunner exec(options.threads);
  runner::Report report("ablation", seed, runs);
  bench::ObsSink sink(options);

  const workload::Workload w = workload::emulation_workload();
  cluster::EmulationConfig emu;
  emu.node_count = 128;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);

  core::ExperimentConfig base;
  base.blocks = w.blocks_for(cl.size());
  base.job.gamma = w.gamma();
  base.replication = 1;
  base.seed = seed;
  base.policy = core::PolicyKind::kAdapt;
  base.obs = options.obs;

  {
    common::Table table({"chain weighting", "elapsed (s)", "locality"});
    for (const auto weighting : {placement::ChainWeighting::kPaper,
                                 placement::ChainWeighting::kOverlap}) {
      core::ExperimentConfig config = base;
      config.weighting = weighting;
      const auto r =
          exec.run_replications(cl, config, runs, sink.collector());
      table.add_row({placement::to_string(weighting),
                     common::format_double(r.elapsed.mean, 0),
                     common::format_percent(r.locality.mean)});
      report.add_result("1. chain weighting",
                        placement::to_string(weighting), "adapt r1", r);
    }
    std::printf("\n--- 1. Algorithm 1 chain weighting ---\n%s",
                table.to_string().c_str());
  }

  {
    // Use the strict-M/G/1 clock, whose wider E[T] spread makes ADAPT
    // want far more than the threshold on the dedicated nodes.
    cluster::EmulationConfig skewed_emu = emu;
    skewed_emu.absolute_arrival_clock = true;
    const cluster::Cluster skewed = cluster::emulated_cluster(skewed_emu);
    common::Table table(
        {"fidelity cap", "elapsed (s)", "max blocks/node", "skew"});
    for (const bool cap : {true, false}) {
      core::ExperimentConfig config = base;
      config.fidelity_cap = cap;
      // Single run for the skew readout (placement is the object here).
      const core::ExperimentResult r = core::run_experiment(skewed, config);
      std::uint64_t max_blocks = 0;
      for (const auto c : r.distribution) {
        max_blocks = std::max(max_blocks, c);
      }
      const auto repeated =
          exec.run_replications(skewed, config, runs, sink.collector());
      table.add_row({cap ? "on (m(k+1)/n)" : "off",
                     common::format_double(repeated.elapsed.mean, 0),
                     std::to_string(max_blocks),
                     common::format_double(r.placement_skew, 2)});
      report.add_result("2. fidelity cap", cap ? "on" : "off", "adapt r1",
                        repeated);
    }
    std::printf("\n--- 2. Section IV-C fidelity cap (strict-M/G/1 "
                "cluster) ---\n%s",
                table.to_string().c_str());
  }

  {
    common::Table table({"speculation", "random r1 (s)", "adapt r1 (s)"});
    for (const bool speculation : {true, false}) {
      core::ExperimentConfig config = base;
      config.job.speculation = speculation;
      config.policy = core::PolicyKind::kRandom;
      const auto random =
          exec.run_replications(cl, config, runs, sink.collector());
      config.policy = core::PolicyKind::kAdapt;
      const auto adapt_r =
          exec.run_replications(cl, config, runs, sink.collector());
      table.add_row({speculation ? "on" : "off",
                     common::format_double(random.elapsed.mean, 0),
                     common::format_double(adapt_r.elapsed.mean, 0)});
      report.add_result("3. speculation", speculation ? "on" : "off",
                        "random r1", random);
      report.add_result("3. speculation", speculation ? "on" : "off",
                        "adapt r1", adapt_r);
    }
    std::printf("\n--- 3. Speculative execution ---\n%s",
                table.to_string().c_str());
  }

  {
    // Trace-population cluster; vary how costly a stranded block is.
    trace::GeneratorConfig gc;
    gc.node_count = 256;
    gc.horizon = 14.0 * 24 * 3600;
    gc.seed = seed;
    const auto gen = trace::generate_seti_like_trace(gc);
    std::vector<avail::InterruptionParams> params;
    for (const auto& h : gen.truth) params.push_back(h.params());
    const cluster::Cluster sim_cl =
        cluster::model_cluster(params, cluster::TraceClusterConfig{});
    const workload::Workload sw = workload::simulation_workload();

    common::Table table({"reissue delay", "random r1 ovh", "adapt r1 ovh",
                         "adapt gain"});
    for (const double delay : {60.0, 600.0, 1800.0}) {
      core::ExperimentConfig config;
      config.blocks = sw.blocks_for(gc.node_count);
      config.job.gamma = sw.gamma();
      config.job.origin_fetch_delay = delay;
      config.steady_state_start = true;
      config.seed = seed;
      config.obs = options.obs;
      config.policy = core::PolicyKind::kRandom;
      const auto random = exec.run_replications(
          sim_cl, config, std::max(1, runs / 2), sink.collector());
      config.policy = core::PolicyKind::kAdapt;
      const auto adapt_r = exec.run_replications(
          sim_cl, config, std::max(1, runs / 2), sink.collector());
      table.add_row({common::format_seconds(delay),
                     common::format_percent(random.total_ratio),
                     common::format_percent(adapt_r.total_ratio),
                     common::format_percent(
                         1.0 - (1.0 + adapt_r.total_ratio) /
                                   (1.0 + random.total_ratio))});
      report.add_result("4. reissue delay", common::format_seconds(delay),
                        "random r1", random);
      report.add_result("4. reissue delay", common::format_seconds(delay),
                        "adapt r1", adapt_r);
    }
    std::printf("\n--- 4. Rescue capability (origin re-issue delay) ---\n%s",
                table.to_string().c_str());
  }

  {
    common::Table table({"arrival clock", "random r1 (s)", "adapt r1 (s)"});
    for (const bool absolute : {false, true}) {
      cluster::EmulationConfig config_emu = emu;
      config_emu.absolute_arrival_clock = absolute;
      const cluster::Cluster clock_cl = cluster::emulated_cluster(config_emu);
      core::ExperimentConfig config = base;
      config.policy = core::PolicyKind::kRandom;
      const auto random =
          exec.run_replications(clock_cl, config, runs, sink.collector());
      config.policy = core::PolicyKind::kAdapt;
      const auto adapt_r =
          exec.run_replications(clock_cl, config, runs, sink.collector());
      const std::string point = absolute ? "absolute" : "uptime";
      table.add_row({absolute ? "absolute (strict M/G/1)" : "uptime",
                     common::format_double(random.elapsed.mean, 0),
                     common::format_double(adapt_r.elapsed.mean, 0)});
      report.add_result("5. arrival clock", point, "random r1", random);
      report.add_result("5. arrival clock", point, "adapt r1", adapt_r);
    }
    std::printf("\n--- 5. Interruption arrival clock ---\n%s",
                table.to_string().c_str());
  }

  {
    // Extension (paper future work): shuffle + reduce phase with
    // random vs availability-aware reducer placement. The per-run
    // seeds are explicit (fixed offsets from the base seed), so the
    // jobs go through the low-level fan-out rather than
    // run_replications' derived seeds.
    common::Table table({"reducer placement", "reduce elapsed (s)",
                         "reassignments", "origin refetches"});
    for (const bool aware : {false, true}) {
      core::ExperimentConfig config = base;
      config.run_reduce = true;
      config.reduce.output_ratio = 1.0;  // Terasort shuffles everything
      config.reduce_availability_aware = aware;
      std::vector<runner::ExperimentRunner::Job> jobs;
      jobs.reserve(static_cast<std::size_t>(runs));
      for (int i = 0; i < runs; ++i) {
        config.seed = seed + 1000 + static_cast<std::uint64_t>(i);
        jobs.push_back({&cl, config});
      }
      auto results = exec.run_all(jobs);
      // run_all has no observation parameter; drain each result's
      // observations into the sink by hand, in job order.
      if (std::vector<obs::RunObservations>* out = sink.collector()) {
        for (core::ExperimentResult& r : results) {
          out->push_back(std::move(r.obs));
        }
      }
      double elapsed = 0.0;
      std::uint64_t reassigned = 0;
      std::uint64_t refetched = 0;
      for (const core::ExperimentResult& r : results) {
        elapsed += r.reduce.elapsed;
        reassigned += r.reduce.reducer_reassignments;
        refetched += r.reduce.origin_refetches;
      }
      table.add_row({aware ? "availability-aware" : "random",
                     common::format_double(elapsed / runs, 0),
                     common::format_double(
                         static_cast<double>(reassigned) / runs, 1),
                     common::format_double(
                         static_cast<double>(refetched) / runs, 1)});
      report.add_result("6. reduce placement",
                        aware ? "availability-aware" : "random", "adapt r1",
                        runner::merge_results(results));
    }
    std::printf("\n--- 6. Reduce phase (future-work extension) ---\n%s",
                table.to_string().c_str());
  }

  {
    // 7. Placement x scheduler grid: does availability-aware placement
    // still pay once the scheduler also reacts to volatility — and do
    // the two compound, or does one subsume the other? Reported per
    // cell: mean makespan plus duplicate-attempt accounting (launches,
    // wins, cancelled-fetch waste).
    common::Table table({"policy", "scheduler", "elapsed (s)",
                         "spec launches", "spec wins", "redundant",
                         "waste/run"});
    for (const auto policy :
         {core::PolicyKind::kRandom, core::PolicyKind::kAdapt}) {
      for (const auto kind :
           {sim::SchedulerKind::kBaseline, sim::SchedulerKind::kCalibrated,
            sim::SchedulerKind::kRedundant}) {
        core::ExperimentConfig config = base;
        config.policy = policy;
        config.job.scheduler.kind = kind;
        const auto r =
            exec.run_replications(cl, config, runs, sink.collector());
        const double n = runs;
        table.add_row(
            {core::to_string(policy), sim::to_string(kind),
             common::format_double(r.elapsed.mean, 0),
             common::format_double(
                 static_cast<double>(r.speculative_launches) / n, 1),
             common::format_double(
                 static_cast<double>(r.speculative_wins) / n, 1),
             common::format_double(
                 static_cast<double>(r.redundant_launches) / n, 1),
             common::format_bytes(r.redundant_waste_bytes /
                                  static_cast<std::uint64_t>(runs))});
        report.add_row(
            "7. scheduler grid", sim::to_string(kind),
            core::to_string(policy) + " r1",
            {{"elapsed_mean", r.elapsed.mean},
             {"locality_mean", r.locality.mean},
             {"speculative_launches",
              static_cast<double>(r.speculative_launches) / n},
             {"speculative_wins",
              static_cast<double>(r.speculative_wins) / n},
             {"redundant_launches",
              static_cast<double>(r.redundant_launches) / n},
             {"redundant_waste_bytes",
              static_cast<double>(r.redundant_waste_bytes) / n}});
      }
    }
    std::printf("\n--- 7. Placement x scheduler grid ---\n%s",
                table.to_string().c_str());
  }
  sink.finish(report);
  bench::write_report(report, options.json_path);
  return 0;
}
