// Churn & recovery bench: permanent departures on top of the transient
// M/G/1 interruption substrate. Sweeps the per-node departure hazard and
// the correlated-burst size against (policy, replication, pipeline)
// series, reporting job failures, data loss and the re-replication
// pipeline's work. Origin re-fetch is disabled so every loss is real:
// a block whose replicas all die is gone unless the pipeline saved it.
//
//   ./bench_churn [--nodes N] [--runs R] [--seed S]
//                 [--dead-timeout SEC] [--threads T] [--json PATH]
//                 [--trace PATH] [--metrics] [--calibrate]
//                 [--sample-dt S] [--timeseries PATH] [--spans PATH]
//                 [--lineage PATH] [--perfetto PATH] [--ring-capacity N]
//                 [--gray]
//
// With --lineage, additionally prints a loss post-mortem: every lost
// block classified by root cause (detection-window wipeout, retry
// exhaustion, false-positive write-off, corruption without survivor),
// aggregated across all sweeps.
//
// With --calibrate, prints a CUSUM drift-detection summary: how long
// after each permanent departure the heartbeat estimator's drift was
// flagged, plus the cluster calibration ratio (realized / predicted).
//
// With --gray, appends sweep (d): gray failures — per-beat heartbeat
// loss crossed with a timed control-plane partition, with bitrot, the
// block scanner and NameNode safe mode enabled — reporting the
// detector's false dead declarations and checksum catches per policy.
#include <array>
#include <cstdio>
#include <memory>
#include <utility>

#include "bench_util.h"
#include "cluster/topology.h"
#include "trace/generator.h"
#include "workload/sweeps.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

std::vector<avail::InterruptionParams> draw_population(std::size_t nodes,
                                                       std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = nodes;
  config.horizon = 14.0 * 24 * 3600;
  config.seed = seed;
  const trace::GeneratedTrace gen = trace::generate_seti_like_trace(config);
  std::vector<avail::InterruptionParams> params;
  params.reserve(gen.truth.size());
  for (const trace::HostTruth& host : gen.truth) {
    params.push_back(host.params());
  }
  return params;
}

struct ChurnSeries {
  core::PolicyKind policy;
  int replication;
  bool pipeline;
  bool anti_affinity = false;
  std::string label() const {
    return core::to_string(policy) + (anti_affinity ? "+aa" : "") + " r" +
           std::to_string(replication) + (pipeline ? " +rr" : " -rr");
  }
};

struct Point {
  std::string label;
  double departure_rate;
  double burst_at;
  double burst_fraction;
  // When > 0, the burst takes down this many whole racks instead of a
  // uniform node fraction (needs a cluster built with a DomainLayout).
  std::uint32_t domain_burst = 0;
};

void run_sweep(runner::ExperimentRunner& exec, runner::Report& report,
               bench::ObsSink& sink, const std::string& title,
               const std::string& column, const std::vector<Point>& points,
               const std::vector<ChurnSeries>& series, std::size_t nodes,
               int runs, std::uint64_t seed, double dead_timeout,
               int rr_concurrency,
               cluster::DomainLayout layout = {}) {
  const auto params = draw_population(nodes, seed);
  cluster::TraceClusterConfig tc;
  tc.domains = layout;
  const auto cl = std::make_shared<const cluster::Cluster>(
      cluster::model_cluster(params, tc));
  workload::Workload w = workload::simulation_workload();

  std::vector<runner::ExperimentRunner::SweepCell> cells;
  cells.reserve(points.size() * series.size());
  for (const Point& point : points) {
    core::ExperimentConfig config;
    config.blocks = w.blocks_for(nodes);
    config.job.gamma = w.gamma();
    config.job.allow_origin_fetch = false;
    config.seed = seed;
    config.obs = sink.options.obs;
    config.job.churn.enabled = true;
    config.job.churn.departure_rate = point.departure_rate;
    if (point.domain_burst > 0) {
      config.job.churn.domain_burst_at = point.burst_at;
      config.job.churn.domain_burst_count = point.domain_burst;
    } else {
      config.job.churn.burst_at = point.burst_at;
      config.job.churn.burst_fraction = point.burst_fraction;
    }
    config.job.churn.dead_timeout = dead_timeout;
    config.job.churn.rereplication.max_concurrent = rr_concurrency;
    for (const ChurnSeries& s : series) {
      config.policy = s.policy;
      config.replication = s.replication;
      config.domain_anti_affinity = s.anti_affinity;
      config.job.churn.rereplication.enabled = s.pipeline;
      cells.push_back({cl, config, runs});
    }
  }
  const std::vector<core::RepeatedResult> results =
      exec.run_sweep(cells, sink.collector());

  common::Table table({column, "series", "elapsed (s)", "failed",
                       "departed", "dead", "blocks lost", "tasks lost",
                       "re-repl", "give-ups", "moved"});
  std::size_t cell = 0;
  for (const Point& point : points) {
    for (const ChurnSeries& s : series) {
      const core::RepeatedResult& r = results[cell++];
      table.add_row(
          {point.label, s.label(),
           common::format_double(r.elapsed.mean, 0),
           std::to_string(r.failed_runs) + "/" + std::to_string(runs),
           std::to_string(r.nodes_departed),
           std::to_string(r.nodes_dead),
           std::to_string(r.blocks_lost),
           std::to_string(r.tasks_lost),
           std::to_string(r.rereplications),
           std::to_string(r.rereplication_giveups),
           common::format_bytes(r.rereplication_bytes)});
      report.add_result(title, point.label, s.label(), r);
    }
  }
  std::printf("\n--- %s ---\n%s", title.c_str(), table.to_string().c_str());
  std::fflush(stdout);
}

// Gray-failure sweep: per-beat heartbeat loss crossed with a timed
// partition of a quarter of the pool, on top of mild crash churn.
// Bitrot + scanner + safe mode run in every cell so the detection
// machinery (not just the injection) is exercised at bench scale. A
// short dead timeout makes lossy detection actually misfire.
struct GrayPoint {
  std::string label;
  double loss;
  bool partition;
};

void run_gray_sweep(runner::ExperimentRunner& exec, runner::Report& report,
                    bench::ObsSink& sink, const std::vector<GrayPoint>& points,
                    const std::vector<ChurnSeries>& series, std::size_t nodes,
                    int runs, std::uint64_t seed, int rr_concurrency) {
  const auto params = draw_population(nodes, seed);
  const auto cl = std::make_shared<const cluster::Cluster>(
      cluster::model_cluster(params, {}));
  workload::Workload w = workload::simulation_workload();

  std::vector<runner::ExperimentRunner::SweepCell> cells;
  cells.reserve(points.size() * series.size());
  for (const GrayPoint& point : points) {
    core::ExperimentConfig config;
    config.blocks = w.blocks_for(nodes);
    config.job.gamma = w.gamma();
    config.job.allow_origin_fetch = false;
    config.seed = seed;
    config.obs = sink.options.obs;
    auto& churn = config.job.churn;
    churn.enabled = true;
    churn.departure_rate = 1.0 / 7200.0;
    churn.dead_timeout = 30.0;
    churn.heartbeat_loss_prob = point.loss;
    if (point.partition) {
      sim::SimJobConfig::ChurnConfig::Partition part;
      part.at = 120.0;
      part.heal_at = 240.0;
      for (std::uint32_t n = 0; n < nodes / 4; ++n) part.nodes.push_back(n);
      churn.partitions.push_back(part);
    }
    churn.bitrot_rate = 1.0 / 300.0;
    churn.scan_interval = 60.0;
    churn.scan_blocks_per_sweep = 16;
    churn.safe_mode_threshold = 0.2;
    churn.safe_mode_hold = 60.0;
    churn.rereplication.max_concurrent = rr_concurrency;
    for (const ChurnSeries& s : series) {
      config.policy = s.policy;
      config.replication = s.replication;
      config.job.churn.rereplication.enabled = s.pipeline;
      cells.push_back({cl, config, runs});
    }
  }
  const std::vector<core::RepeatedResult> results =
      exec.run_sweep(cells, sink.collector());

  common::Table table({"gray mode", "series", "elapsed (s)", "failed",
                       "lost beats", "false dead", "dead", "corrupt",
                       "caught", "safe", "blocks lost", "re-repl"});
  std::size_t cell = 0;
  for (const GrayPoint& point : points) {
    for (const ChurnSeries& s : series) {
      const core::RepeatedResult& r = results[cell++];
      table.add_row(
          {point.label, s.label(),
           common::format_double(r.elapsed.mean, 0),
           std::to_string(r.failed_runs) + "/" + std::to_string(runs),
           std::to_string(r.heartbeats_lost),
           std::to_string(r.false_dead_declarations),
           std::to_string(r.nodes_dead),
           std::to_string(r.replicas_corrupted),
           std::to_string(r.corrupt_reads),
           std::to_string(r.safe_mode_entries),
           std::to_string(r.blocks_lost),
           std::to_string(r.rereplications)});
      // Gray metrics ride a dedicated row so add_result's fixed metric
      // list (and every existing report consumer) stays untouched.
      report.add_row(
          "Churn (d): gray failures", point.label, s.label(),
          {{"elapsed_mean", r.elapsed.mean},
           {"failed_runs", static_cast<double>(r.failed_runs)},
           {"gray_heartbeats_lost",
            static_cast<double>(r.heartbeats_lost)},
           {"gray_false_dead_declarations",
            static_cast<double>(r.false_dead_declarations)},
           {"gray_replicas_corrupted",
            static_cast<double>(r.replicas_corrupted)},
           {"gray_corrupt_reads", static_cast<double>(r.corrupt_reads)},
           {"gray_safe_mode_entries",
            static_cast<double>(r.safe_mode_entries)},
           {"nodes_dead", static_cast<double>(r.nodes_dead)},
           {"blocks_lost", static_cast<double>(r.blocks_lost)},
           {"rereplications", static_cast<double>(r.rereplications)}});
    }
  }
  std::printf("\n--- Churn (d): gray failures (loss x partition) ---\n%s",
              table.to_string().c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bench::BenchOptions common_opts =
      bench::bench_options(flags, {.runs = 2, .seed = 5, .nodes = 128});
  const std::size_t nodes = common_opts.nodes;
  const int runs = common_opts.runs;
  const std::uint64_t seed = common_opts.seed;
  const double dead_timeout = flags.get_double("dead-timeout", 120.0);
  const int rr_concurrency =
      static_cast<int>(flags.get_int("rr-concurrency", 8));
  const bool gray = flags.get_bool("gray", false);
  const bench::RunnerOptions& options = common_opts.runner;
  bench::abort_on_unused_flags(flags);

  bench::print_header(
      "Churn & recovery — departures, dead declaration, re-replication",
      "origin re-fetch disabled: a block is lost unless the pipeline "
      "restored it.\nDefaults: " + std::to_string(nodes) + " nodes, " +
          std::to_string(runs) + " run(s) per point, dead timeout " +
          common::format_double(dead_timeout, 0) + " s.");

  runner::ExperimentRunner exec(options.threads);
  runner::Report report("churn", seed, runs);
  report.set_config("nodes", static_cast<double>(nodes));
  report.set_config("dead_timeout", dead_timeout);
  report.set_config("rr_concurrency", static_cast<double>(rr_concurrency));
  bench::ObsSink sink(options);

  const std::vector<ChurnSeries> series = {
      {core::PolicyKind::kRandom, 2, true},
      {core::PolicyKind::kAdapt, 2, true},
      {core::PolicyKind::kAdapt, 2, false},
      {core::PolicyKind::kAdapt, 3, true},
  };

  {
    // Hazard sweep: mean node lifetime from "nobody leaves" down to
    // ~15 min; the job itself runs for minutes at this scale.
    std::vector<Point> points = {
        {"no churn", 0.0, -1.0, 0.0},
        {"1/2h", 1.0 / 7200.0, -1.0, 0.0},
        {"1/1h", 1.0 / 3600.0, -1.0, 0.0},
        {"1/30m", 1.0 / 1800.0, -1.0, 0.0},
        {"1/15m", 1.0 / 900.0, -1.0, 0.0},
    };
    run_sweep(exec, report, sink, "Churn (a): departure hazard",
              "hazard", points, series, nodes, runs, seed, dead_timeout,
              rr_concurrency);
  }
  {
    // Correlated burst at t = 300 s: a fraction of the pool leaves at
    // one instant (campus power cut).
    std::vector<Point> points = {
        {"10%", 0.0, 300.0, 0.10},
        {"25%", 0.0, 300.0, 0.25},
        {"50%", 0.0, 300.0, 0.50},
    };
    run_sweep(exec, report, sink, "Churn (b): correlated burst at 300 s",
              "burst", points, series, nodes, runs, seed + 1, dead_timeout,
              rr_concurrency);
  }
  {
    // Correlated rack bursts: the cluster gets a 4-site x 2-rack
    // hierarchy (8 racks, 16 nodes each at the default scale) and the
    // burst takes whole racks down at t = 300 s. Racks this size are
    // where availability-weighted concentration actually co-locates
    // replicas, so this is the loss mode plain ADAPT is weakest
    // against; the +aa series places replicas anti-affine across racks
    // and the jump series hashes over the domain-major order. The
    // "hazard 1/1h" point is the independent-loss baseline on the same
    // layered cluster.
    const cluster::DomainLayout layout = {4, 2};
    const std::vector<ChurnSeries> domain_series = {
        {core::PolicyKind::kRandom, 2, true},
        {core::PolicyKind::kAdapt, 2, true},
        {core::PolicyKind::kAdapt, 2, true, /*anti_affinity=*/true},
        {core::PolicyKind::kJump, 2, true},
        {core::PolicyKind::kRandom, 3, true},
        {core::PolicyKind::kAdapt, 3, true},
        {core::PolicyKind::kAdapt, 3, true, /*anti_affinity=*/true},
        {core::PolicyKind::kJump, 3, true},
    };
    std::vector<Point> points = {
        {"hazard 1/1h", 1.0 / 3600.0, -1.0, 0.0, 0},
        {"1 rack", 0.0, 300.0, 0.0, 1},
        {"2 racks", 0.0, 300.0, 0.0, 2},
        {"4 racks", 0.0, 300.0, 0.0, 4},
    };
    run_sweep(exec, report, sink,
              "Churn (c): rack bursts at 300 s (4 sites x 2 racks)",
              "loss mode", points, domain_series, nodes, runs, seed + 2,
              dead_timeout, rr_concurrency, layout);
  }
  if (gray) {
    // Gray failures: the detector sees lossy beats and a partitioned
    // quarter of the pool while every node keeps computing.
    const std::vector<ChurnSeries> gray_series = {
        {core::PolicyKind::kRandom, 2, true},
        {core::PolicyKind::kAdapt, 2, true},
        {core::PolicyKind::kAdapt, 3, true},
    };
    std::vector<GrayPoint> points = {
        {"clean", 0.0, false},
        {"loss 10%", 0.10, false},
        {"loss 25%", 0.25, false},
        {"partition", 0.0, true},
        {"loss 10% + part", 0.10, true},
    };
    run_gray_sweep(exec, report, sink, points, gray_series, nodes, runs,
                   seed + 3, rr_concurrency);
  }
  if (options.obs.calibration.enabled) {
    // Aggregate the CUSUM drift detections across every run: how long
    // after a node permanently departed did the estimator's drift show.
    std::vector<double> latencies;
    std::uint64_t false_alarms = 0;
    std::uint64_t pairs = 0;
    double predicted = 0.0;
    double realized = 0.0;
    for (const obs::RunObservations& run : sink.runs) {
      pairs += run.calibration.pairs;
      predicted += run.calibration.predicted_sum;
      realized += run.calibration.realized_sum;
      for (const obs::DriftAlarm& alarm : run.calibration.alarms) {
        if (alarm.latency >= 0.0) {
          latencies.push_back(alarm.latency);
        } else {
          ++false_alarms;
        }
      }
    }
    const std::vector<double> qs =
        common::percentiles(latencies, {0.5, 0.95});
    double mean = 0.0;
    for (const double l : latencies) mean += l;
    if (!latencies.empty()) mean /= static_cast<double>(latencies.size());
    common::Table drift({"detections", "false alarms", "latency mean (s)",
                         "latency p50 (s)", "latency p95 (s)",
                         "calibration ratio"});
    drift.add_row({std::to_string(latencies.size()),
                   std::to_string(false_alarms),
                   common::format_double(mean, 1),
                   common::format_double(qs[0], 1),
                   common::format_double(qs[1], 1),
                   common::format_double(
                       predicted > 0.0 ? realized / predicted : 0.0, 3)});
    std::printf("\n--- Predictor drift detection (CUSUM) ---\n%s",
                drift.to_string().c_str());
    std::printf("pairs matched: %llu (realized task completions paired "
                "with their placement-time E[T] quote)\n",
                static_cast<unsigned long long>(pairs));
  }
  if (options.obs.lineage) {
    // Loss post-mortem: classify every lost block across every cell by
    // root cause. Correlated bursts should be dominated by
    // all_holders_dead_within_window (every copy written off in one
    // detection batch, no repair ever started); unclassified staying at
    // zero is the taxonomy's coverage guarantee.
    std::array<std::uint64_t, obs::kLossCauseCount> counts{};
    std::uint64_t total = 0;
    for (const obs::RunObservations& run : sink.runs) {
      if (run.lineage == nullptr) continue;
      const obs::LossReport losses = obs::post_mortem(*run.lineage);
      total += losses.total;
      for (std::size_t c = 0; c < obs::kLossCauseCount; ++c) {
        counts[c] += losses.counts[c];
      }
    }
    common::Table causes({"root cause", "blocks lost", "share"});
    std::vector<std::pair<std::string, double>> metrics;
    metrics.reserve(obs::kLossCauseCount + 1);
    for (std::size_t c = 0; c < obs::kLossCauseCount; ++c) {
      const char* name = obs::to_string(static_cast<obs::LossCause>(c));
      causes.add_row({name, std::to_string(counts[c]),
                      common::format_percent(
                          total > 0 ? static_cast<double>(counts[c]) /
                                          static_cast<double>(total)
                                    : 0.0)});
      metrics.emplace_back(std::string("loss_cause_") + name,
                           static_cast<double>(counts[c]));
    }
    metrics.emplace_back("loss_total", static_cast<double>(total));
    std::printf("\n--- Loss post-mortem (root-cause breakdown, all "
                "sweeps) ---\n%s",
                causes.to_string().c_str());
    const std::uint64_t unclassified =
        counts[static_cast<std::size_t>(obs::LossCause::kUnclassified)];
    std::printf("classified %llu/%llu lost block(s)%s\n",
                static_cast<unsigned long long>(total - unclassified),
                static_cast<unsigned long long>(total),
                unclassified > 0 ? "  [WARNING: unclassified losses]" : "");
    report.add_row("Loss post-mortem", "all sweeps", "all series", metrics);
  }
  sink.finish(report);
  bench::write_report(report, options.json_path);
  return 0;
}
