// Figure 4 reproduction: data locality (fraction of map tasks whose
// winning attempt ran on a replica holder) over the same three sweeps as
// Figure 3.
//
//   ./bench_fig4_locality [--runs R] [--seed S] [--full]
#include <cstdio>

#include "bench_util.h"
#include "cluster/topology.h"
#include "workload/sweeps.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

void run_sweep(const std::string& title, const std::string& column,
               const std::vector<std::string>& labels,
               const std::vector<cluster::EmulationConfig>& configs,
               int runs, std::uint64_t seed) {
  const workload::Workload w = workload::emulation_workload();
  common::Table table({column, "random r1", "adapt r1", "random r2",
                       "adapt r2"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const cluster::Cluster cl = cluster::emulated_cluster(configs[i]);
    core::ExperimentConfig config;
    config.blocks = w.blocks_for(cl.size());
    config.job.gamma = w.gamma();
    config.seed = seed + i;
    std::vector<std::string> row = {labels[i]};
    for (const bench::Series& series : bench::fig3_series()) {
      config.policy = series.policy;
      config.replication = series.replication;
      const core::RepeatedResult r = core::run_repeated(cl, config, runs);
      row.push_back(common::format_percent(r.locality.mean));
    }
    table.add_row(row);
  }
  std::printf("\n--- %s ---\n%s", title.c_str(), table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bool full = flags.get_bool("full", false);
  const int runs = static_cast<int>(flags.get_int("runs", full ? 10 : 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2012));
  bench::abort_on_unused_flags(flags);

  bench::print_header(
      "Figure 4 — data locality, emulated environment",
      "paper reference: random r1 dips (~87% at ratio 1/2) and falls "
      "with bandwidth;\nADAPT stays high and stable. " +
          std::to_string(runs) + " runs per point.");

  const workload::EmulationDefaults defaults =
      workload::emulation_defaults();

  {
    std::vector<std::string> labels;
    std::vector<cluster::EmulationConfig> configs;
    for (const double ratio : workload::interrupted_ratio_sweep()) {
      cluster::EmulationConfig config;
      config.node_count = defaults.node_count;
      config.interrupted_ratio = ratio;
      labels.push_back(common::format_double(ratio, 2));
      configs.push_back(config);
    }
    run_sweep("Figure 4(a): ratio of interrupted nodes", "interrupted",
              labels, configs, runs, seed);
  }
  {
    std::vector<std::string> labels;
    std::vector<cluster::EmulationConfig> configs;
    for (const double bps : workload::bandwidth_sweep()) {
      cluster::EmulationConfig config;
      config.node_count = defaults.node_count;
      config.bandwidth_bps = bps;
      labels.push_back(common::format_bandwidth(bps));
      configs.push_back(config);
    }
    run_sweep("Figure 4(b): network bandwidth", "bandwidth", labels,
              configs, runs, seed + 100);
  }
  {
    std::vector<std::string> labels;
    std::vector<cluster::EmulationConfig> configs;
    for (const std::size_t n : workload::emulation_node_sweep()) {
      cluster::EmulationConfig config;
      config.node_count = n;
      labels.push_back(std::to_string(n));
      configs.push_back(config);
    }
    run_sweep("Figure 4(c): number of nodes", "nodes", labels, configs,
              runs, seed + 200);
  }
  return 0;
}
