// Figure 4 reproduction: data locality (fraction of map tasks whose
// winning attempt ran on a replica holder) over the same three sweeps as
// Figure 3.
//
//   ./bench_fig4_locality [--runs R] [--seed S] [--full]
//                         [--threads T] [--json PATH]
//                         [--trace PATH] [--metrics]
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cluster/topology.h"
#include "workload/sweeps.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

void run_sweep(runner::ExperimentRunner& exec, runner::Report& report,
               bench::ObsSink& sink, const std::string& title,
               const std::string& column,
               const std::vector<std::string>& labels,
               const std::vector<cluster::EmulationConfig>& configs,
               int runs, std::uint64_t seed) {
  const workload::Workload w = workload::emulation_workload();
  const std::vector<bench::Series> series = bench::fig3_series();

  std::vector<runner::ExperimentRunner::SweepCell> cells;
  cells.reserve(configs.size() * series.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto cl = std::make_shared<const cluster::Cluster>(
        cluster::emulated_cluster(configs[i]));
    core::ExperimentConfig config;
    config.blocks = w.blocks_for(cl->size());
    config.job.gamma = w.gamma();
    config.seed = seed + i;
    config.obs = sink.options.obs;
    for (const bench::Series& s : series) {
      config.policy = s.policy;
      config.replication = s.replication;
      cells.push_back({cl, config, runs});
    }
  }
  const std::vector<core::RepeatedResult> results =
      exec.run_sweep(cells, sink.collector());

  common::Table table({column, "random r1", "adapt r1", "random r2",
                       "adapt r2"});
  std::size_t cell = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::vector<std::string> row = {labels[i]};
    for (const bench::Series& s : series) {
      const core::RepeatedResult& r = results[cell++];
      row.push_back(common::format_percent(r.locality.mean));
      report.add_result(title, labels[i], s.label(), r);
    }
    table.add_row(row);
  }
  std::printf("\n--- %s ---\n%s", title.c_str(), table.to_string().c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bench::BenchOptions common_opts = bench::bench_options(
      flags, {.runs = 5, .full_runs = 10, .seed = 2012});
  const bool full = common_opts.full;
  const int runs = common_opts.runs;
  const std::uint64_t seed = common_opts.seed;
  const bench::RunnerOptions& options = common_opts.runner;
  bench::abort_on_unused_flags(flags);

  bench::print_header(
      "Figure 4 — data locality, emulated environment",
      "paper reference: random r1 dips (~87% at ratio 1/2) and falls "
      "with bandwidth;\nADAPT stays high and stable. " +
          std::to_string(runs) + " runs per point.");

  runner::ExperimentRunner exec(options.threads);
  runner::Report report("fig4_locality", seed, runs);
  bench::ObsSink sink(options);

  const workload::EmulationDefaults defaults =
      workload::emulation_defaults();

  {
    std::vector<std::string> labels;
    std::vector<cluster::EmulationConfig> configs;
    for (const double ratio : workload::interrupted_ratio_sweep()) {
      cluster::EmulationConfig config;
      config.node_count = defaults.node_count;
      config.interrupted_ratio = ratio;
      labels.push_back(common::format_double(ratio, 2));
      configs.push_back(config);
    }
    run_sweep(exec, report, sink, "Figure 4(a): ratio of interrupted nodes",
              "interrupted", labels, configs, runs, seed);
  }
  {
    std::vector<std::string> labels;
    std::vector<cluster::EmulationConfig> configs;
    for (const double bps : workload::bandwidth_sweep()) {
      cluster::EmulationConfig config;
      config.node_count = defaults.node_count;
      config.bandwidth_bps = bps;
      labels.push_back(common::format_bandwidth(bps));
      configs.push_back(config);
    }
    run_sweep(exec, report, sink, "Figure 4(b): network bandwidth",
              "bandwidth", labels, configs, runs, seed + 100);
  }
  {
    std::vector<std::string> labels;
    std::vector<cluster::EmulationConfig> configs;
    for (const std::size_t n : workload::emulation_node_sweep()) {
      cluster::EmulationConfig config;
      config.node_count = n;
      labels.push_back(std::to_string(n));
      configs.push_back(config);
    }
    run_sweep(exec, report, sink, "Figure 4(c): number of nodes", "nodes",
              labels, configs, runs, seed + 200);
  }
  sink.finish(report);
  bench::write_report(report, options.json_path);
  return 0;
}
