// Hot-path perf baseline: the regression surface for the NodeMask
// placement API, the memoized interruption model and the pooled
// simulator internals. Four measurements:
//   1. placement micro  — ns per ADAPT draw against a pre-built
//      all-eligible NodeMask (pure Algorithm-1 lookup + rejection).
//   2. create_file      — end-to-end ns per placement draw through the
//      NameNode (mask maintenance + fidelity cap + policy feedback).
//   3. simulation       — events/s of a full map-phase run on the
//      emulated 256-node cluster (event queue + network hot loops).
//   4. churn recovery   — wall time of a churn run with the
//      re-replication pipeline on (policy rebuilds hit the shared
//      Eq. 5 cache; repair placement goes through the mask path),
//      plus the same run with only the causal lineage index enabled
//      (churn_lineage/wall_s) to bound the --lineage streaming cost.
//
// The committed BENCH_hotpath.json at the repo root is the --quick
// baseline CI compares against (warn-only; see tools/compare_bench.py
// and DESIGN.md §7). Timings are machine-dependent — regenerate the
// baseline with this binary when reference hardware changes.
//
//   ./bench_hotpath [--quick] [--obs] [--runs R] [--seed S] [--json PATH]
//                   [--threads T] [--trace PATH] [--metrics]
//
// --obs turns the full observability stack on for the simulation and
// churn measurements (metrics + spans + calibration + 5 s time-series
// sampling) while keeping metric names unchanged, so CI can run the
// bench twice and diff the two JSONs with tools/compare_bench.py to
// bound the enabled-path overhead (warn-only). Without --obs every
// hook sits on its disabled path, which is the committed baseline.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/node_mask.h"
#include "cluster/topology.h"
#include "common/rng.h"
#include "hdfs/namenode.h"
#include "placement/adapt_policy.h"
#include "placement/jump_hash_policy.h"
#include "trace/generator.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One row of BENCH_hotpath.json. `better` tells the compare script
// which direction is a regression ("lower", "higher") or to report
// without comparing ("info").
struct Metric {
  std::string name;
  double value;
  std::string unit;
  std::string better;
};

std::vector<double> synthetic_expected_times(std::size_t nodes) {
  common::Rng rng(17);
  std::vector<double> et(nodes);
  for (double& v : et) v = 8.0 + rng.uniform() * 72.0;
  return et;
}

// 1. Pure draw cost: Algorithm-1 hash-table lookup plus the rejection
// loop, against a fully eligible mask (the common case in a healthy
// cluster — every rejection-path draw hits on the first try).
void bench_placement_micro(std::vector<Metric>& metrics, bool quick) {
  // Even --quick keeps 1M draws: the loop costs milliseconds and
  // anything shorter is dominated by timer/cache noise.
  const std::uint64_t iterations = quick ? 1'000'000 : 2'000'000;
  std::printf("\n--- placement micro (%llu draws per size) ---\n",
              static_cast<unsigned long long>(iterations));
  for (const std::size_t nodes : {std::size_t{128}, std::size_t{1024},
                                  std::size_t{8192}}) {
    const auto policy =
        placement::make_adapt_policy(synthetic_expected_times(nodes),
                                     nodes * 20);
    const cluster::NodeMask eligible(nodes, true);
    common::Rng rng(23);
    std::uint64_t sink = 0;  // keep the draws observable
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
      sink += policy->choose(eligible, rng).value_or(0);
    }
    const double ns = seconds_since(t0) * 1e9 /
                      static_cast<double>(iterations);
    std::printf("nodes=%5zu  %7.1f ns/draw  (checksum %llu)\n", nodes, ns,
                static_cast<unsigned long long>(sink));
    metrics.push_back({"placement_micro/nodes=" + std::to_string(nodes),
                       ns, "ns/draw", "lower"});
  }
}

// 1b. Jump-consistent-hash draw cost: the keyed O(ln n) bucket walk plus
// the ring probe, against a fully eligible mask (zero probing in the
// common case). No rng, no hash table — this is the policy the churn
// bench credits with O(1/n) remap; its draw must stay competitive.
void bench_jump_micro(std::vector<Metric>& metrics, bool quick) {
  const std::uint64_t iterations = quick ? 1'000'000 : 2'000'000;
  std::printf("\n--- jump placement micro (%llu draws per size) ---\n",
              static_cast<unsigned long long>(iterations));
  for (const std::size_t nodes : {std::size_t{128}, std::size_t{1024},
                                  std::size_t{8192}}) {
    std::vector<cluster::NodeIndex> order(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      order[i] = static_cast<cluster::NodeIndex>(i);
    }
    const placement::JumpHashPolicy policy(std::move(order));
    const cluster::NodeMask eligible(nodes, true);
    common::Rng rng(23);  // untouched by the keyed path
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i) {
      sink += policy
                  .choose_keyed(i, static_cast<std::uint32_t>(i & 1),
                                eligible, rng)
                  .value_or(0);
    }
    const double ns = seconds_since(t0) * 1e9 /
                      static_cast<double>(iterations);
    std::printf("nodes=%5zu  %7.1f ns/draw  (checksum %llu)\n", nodes, ns,
                static_cast<unsigned long long>(sink));
    metrics.push_back({"jump_micro/nodes=" + std::to_string(nodes), ns,
                       "ns/draw", "lower"});
  }
}

// 2. End-to-end placement through the NameNode: incremental mask
// maintenance, per-call fidelity cap, capacity bookkeeping and the
// policy feedback loop. 20480 blocks x 2 replicas per size.
void bench_create_file(std::vector<Metric>& metrics) {
  const std::uint32_t blocks = 20480;
  const int replication = 2;
  std::printf("\n--- create_file end-to-end (%u blocks, r%d) ---\n", blocks,
              replication);
  for (const std::size_t nodes : {std::size_t{128}, std::size_t{1024},
                                  std::size_t{8192}}) {
    const auto policy =
        placement::make_adapt_policy(synthetic_expected_times(nodes),
                                     blocks);
    hdfs::NameNode::Options options;
    options.fidelity_cap = true;
    hdfs::NameNode namenode(nodes, options);
    common::Rng rng(23);
    const auto t0 = Clock::now();
    namenode.create_file("f", blocks, replication, policy, rng);
    const double ns = seconds_since(t0) * 1e9 /
                      (static_cast<double>(blocks) * replication);
    std::printf("nodes=%5zu  %7.1f ns/draw\n", nodes, ns);
    metrics.push_back({"create_file/nodes=" + std::to_string(nodes), ns,
                       "ns/draw", "lower"});
  }
}

// 3. Simulator throughput: full map-phase runs on the emulated cluster;
// the inner loops are the slab-pooled event queue and the span-arena
// network model.
// With `obs` every collection hook is live: metrics, spans, calibration
// pairing and 5 s sampling — the enabled-path cost CI bounds warn-only.
obs::Options obs_stack() {
  obs::Options obs;
  obs.metrics = true;
  obs.spans = true;
  obs.sample_dt = 5.0;
  obs.calibration.enabled = true;
  obs.calibration.per_node = true;
  obs.lineage = true;
  return obs;
}

void bench_simulation(std::vector<Metric>& metrics, int runs, bool obs) {
  cluster::EmulationConfig emu;
  emu.node_count = 256;
  const cluster::Cluster cl = cluster::emulated_cluster(emu);
  core::ExperimentConfig config;
  config.policy = core::PolicyKind::kAdapt;
  config.replication = 2;
  config.blocks = 5120;
  config.job.gamma = 8.0;
  config.seed = 7;
  if (obs) config.obs = obs_stack();
  std::uint64_t events = 0;
  double wall = 0.0;
  for (int i = 0; i < runs; ++i) {
    const auto t0 = Clock::now();
    const core::ExperimentResult r = core::run_experiment(cl, config);
    wall += seconds_since(t0);
    events += r.job.events_processed;
  }
  const double rate = static_cast<double>(events) / wall;
  std::printf("\n--- simulation (256 nodes, adapt r2, %d run(s)) ---\n"
              "%llu events in %.3f s -> %.0f events/s\n",
              runs, static_cast<unsigned long long>(events), wall, rate);
  metrics.push_back({"simulation/events_per_s", rate, "events/s",
                     "higher"});
}

// 4. Churn recovery: permanent departures with the re-replication
// pipeline on. Every dead declaration rebuilds the destination policy
// (shared TaskTimeCache) and every repair draws through the mask path.
void bench_churn_recovery(std::vector<Metric>& metrics, int runs,
                          std::uint64_t seed, bool obs) {
  const std::size_t nodes = 128;
  trace::GeneratorConfig gc;
  gc.node_count = nodes;
  gc.horizon = 14.0 * 24 * 3600;
  gc.seed = seed;
  const trace::GeneratedTrace gen = trace::generate_seti_like_trace(gc);
  std::vector<avail::InterruptionParams> params;
  params.reserve(gen.truth.size());
  for (const trace::HostTruth& host : gen.truth) {
    params.push_back(host.params());
  }
  const cluster::Cluster cl =
      cluster::model_cluster(params, cluster::TraceClusterConfig{});
  const workload::Workload w = workload::simulation_workload();

  core::ExperimentConfig config;
  config.policy = core::PolicyKind::kAdapt;
  config.replication = 2;
  config.blocks = w.blocks_for(nodes);
  config.job.gamma = w.gamma();
  config.job.allow_origin_fetch = false;
  config.seed = seed;
  config.job.churn.enabled = true;
  config.job.churn.departure_rate = 1.0 / 7200.0;
  config.job.churn.dead_timeout = 60.0;
  config.job.churn.rereplication.enabled = true;
  if (obs) config.obs = obs_stack();

  std::uint64_t rereplications = 0;
  double wall = 0.0;
  for (int i = 0; i < runs; ++i) {
    config.seed = seed + static_cast<std::uint64_t>(i);
    const auto t0 = Clock::now();
    const core::ExperimentResult r = core::run_experiment(cl, config);
    wall += seconds_since(t0);
    rereplications += r.job.rereplications;
  }
  std::printf("\n--- churn recovery (128 nodes, adapt r2 +rr, %d run(s)) "
              "---\n%.3f s wall, %llu re-replication(s)\n",
              runs, wall,
              static_cast<unsigned long long>(rereplications));
  metrics.push_back({"churn_recovery/wall_s", wall, "s", "lower"});
  metrics.push_back({"churn_recovery/rereplications",
                     static_cast<double>(rereplications), "count",
                     "info"});

  // 4b. Lineage overhead: the same churn run with ONLY the lineage
  // index on — event tracer plus the streaming causal accumulator and
  // its final snapshot. The delta against churn_recovery/wall_s bounds
  // the --lineage cost; the --obs comparison covers the full stack.
  obs::Options lineage_only;
  lineage_only.lineage = true;
  config.obs = lineage_only;
  std::uint64_t losses = 0;
  double lineage_wall = 0.0;
  for (int i = 0; i < runs; ++i) {
    config.seed = seed + static_cast<std::uint64_t>(i);
    const auto t0 = Clock::now();
    const core::ExperimentResult r = core::run_experiment(cl, config);
    lineage_wall += seconds_since(t0);
    if (r.obs.lineage != nullptr) {
      losses += obs::post_mortem(*r.obs.lineage).total;
    }
  }
  std::printf("\n--- churn recovery + lineage index (%d run(s)) ---\n"
              "%.3f s wall, %llu classified loss(es)\n",
              runs, lineage_wall, static_cast<unsigned long long>(losses));
  metrics.push_back({"churn_lineage/wall_s", lineage_wall, "s", "lower"});
}

void write_json(const std::vector<Metric>& metrics, bool quick,
                const std::string& path) {
  if (path.empty()) return;
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"bench\": \"hotpath\",\n  \"schema\": 1,\n"
                    "  \"mode\": \"%s\",\n  \"metrics\": [\n",
               quick ? "quick" : "full");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": "
                 "\"%s\", \"better\": \"%s\"}%s\n",
                 m.name.c_str(), m.value, m.unit.c_str(),
                 m.better.c_str(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %zu metric(s) to %s\n", metrics.size(),
              path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const bool obs = flags.get_bool("obs", false);
  const bench::BenchOptions common_opts =
      bench::bench_options(flags, {.runs = 3, .seed = 7});
  const int runs = quick ? 1 : common_opts.runs;
  const std::uint64_t seed = common_opts.seed;
  const bench::RunnerOptions& options = common_opts.runner;
  bench::abort_on_unused_flags(flags);

  bench::print_header(
      "Hot-path perf baseline (DESIGN.md §7)",
      std::string("placement draw / create_file / simulation / churn "
                  "recovery; ") +
          (quick ? "--quick (CI smoke scale)" : "full scale") +
          (obs ? "; full observability stack ON" : ""));

  std::vector<Metric> metrics;
  bench_placement_micro(metrics, quick);
  bench_jump_micro(metrics, quick);
  bench_create_file(metrics);
  bench_simulation(metrics, runs, obs);
  bench_churn_recovery(metrics, runs, seed, obs);
  write_json(metrics, quick, options.json_path);
  return 0;
}
