// Table 1 reproduction: summary statistics of the synthetic SETI@home
// failure trace (MTBI and interruption duration), against the paper's
// reported numbers.
//
//   ./bench_table1_trace_stats [--nodes N] [--years Y] [--seed S] [--full]
#include <cstdio>

#include "bench_util.h"
#include "trace/generator.h"
#include "trace/trace_stats.h"

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bool full = flags.get_bool("full", false);

  trace::GeneratorConfig config;
  config.node_count =
      static_cast<std::size_t>(flags.get_int("nodes", full ? 16384 : 2048));
  config.horizon =
      flags.get_double("years", full ? 1.5 : 0.25) * 365.0 * 24 * 3600;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  bench::abort_on_unused_flags(flags);

  bench::print_header(
      "Table 1 — SETI@home failure-trace summary (synthetic substitute)",
      "paper: 226208 hosts over 1.5 years; here: " +
          std::to_string(config.node_count) + " hosts over " +
          common::format_seconds(config.horizon) +
          (full ? "" : "  (pass --full for 16384 hosts x 1.5 years)"));

  const trace::GeneratedTrace gen = trace::generate_seti_like_trace(config);
  const trace::TraceStats stats = trace::compute_trace_stats(gen.trace);

  common::RunningStats truth_mtbi;
  common::RunningStats truth_duration;
  for (const trace::HostTruth& host : gen.truth) {
    truth_mtbi.add(host.mtbi);
    truth_duration.add(host.mean_duration);
  }

  std::printf("events: %zu   hosts with events: %zu / %zu\n\n",
              stats.event_count, stats.hosts_with_events,
              config.node_count);

  common::Table table({"statistic", "paper", "drawn population",
                       "measured (per-host)", "measured (pooled events)"});
  table.add_row({"MTBI mean (s)", "160290",
                 common::format_double(truth_mtbi.mean(), 0),
                 common::format_double(stats.mtbi_per_host.mean, 0),
                 common::format_double(stats.mtbi.mean, 0)});
  table.add_row({"MTBI std dev (s)", "701419",
                 common::format_double(truth_mtbi.stddev(), 0),
                 common::format_double(stats.mtbi_per_host.stddev, 0),
                 common::format_double(stats.mtbi.stddev, 0)});
  table.add_row({"MTBI CoV", "4.376",
                 common::format_double(truth_mtbi.coefficient_of_variation(), 3),
                 common::format_double(stats.mtbi_per_host.cov, 3),
                 common::format_double(stats.mtbi.cov, 3)});
  table.add_row({"Duration mean (s)", "109380",
                 common::format_double(truth_duration.mean(), 0),
                 common::format_double(stats.duration_per_host.mean, 0),
                 common::format_double(stats.duration.mean, 0)});
  table.add_row({"Duration std dev (s)", "807983",
                 common::format_double(truth_duration.stddev(), 0),
                 common::format_double(stats.duration_per_host.stddev, 0),
                 common::format_double(stats.duration.stddev, 0)});
  table.add_row({"Duration CoV", "7.3869",
                 common::format_double(
                     truth_duration.coefficient_of_variation(), 3),
                 common::format_double(stats.duration_per_host.cov, 3),
                 common::format_double(stats.duration.cov, 3)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "'drawn population' is the generator's per-host ground truth (the\n"
      "Table 1 reading it calibrates to); the measured columns re-estimate\n"
      "it from the emitted events and are censored by the observation\n"
      "window, which is why the heavy tails read low at short horizons.\n");
  return 0;
}
