// Figure 5 reproduction: large-scale trace-driven simulation with the
// per-component overhead decomposition (rework / recovery / migration /
// misc as ratios of the aggregate failure-free execution time).
//   (a) vs network bandwidth {4, 8, 16, 32} Mb/s
//   (b) vs block size {16 .. 256} MiB
//   (c) vs number of nodes
//
// Substrate: per-host M/G/1 interruption processes with parameters drawn
// from the Table-1-calibrated population; hosts start in steady state
// (placement sees only live DataNodes); stranded blocks are re-served by
// the data origin after a work-reissue delay (see DESIGN.md §2/§5).
//
//   ./bench_fig5_simulation [--nodes N] [--runs R] [--seed S]
//                           [--reissue-delay SEC] [--full]
//                           [--threads T] [--json PATH]
//                           [--trace PATH] [--metrics]
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cluster/topology.h"
#include "trace/generator.h"
#include "workload/sweeps.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

std::vector<avail::InterruptionParams> draw_population(std::size_t nodes,
                                                       std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = nodes;
  config.horizon = 14.0 * 24 * 3600;
  config.seed = seed;
  const trace::GeneratedTrace gen = trace::generate_seti_like_trace(config);
  std::vector<avail::InterruptionParams> params;
  params.reserve(gen.truth.size());
  for (const trace::HostTruth& host : gen.truth) {
    params.push_back(host.params());
  }
  return params;
}

struct Point {
  std::string label;
  std::size_t nodes;
  double bandwidth_bps;
  std::uint64_t block_size;
};

void run_sweep(runner::ExperimentRunner& exec, runner::Report& report,
               bench::ObsSink& sink, const std::string& title,
               const std::string& column, const std::vector<Point>& points,
               const std::vector<bench::Series>& series, int runs,
               std::uint64_t seed, double reissue_delay) {
  // Build the whole (point x series) grid first; every individual
  // replication then runs as an independent pool job.
  std::vector<runner::ExperimentRunner::SweepCell> cells;
  cells.reserve(points.size() * series.size());
  for (const Point& point : points) {
    const auto params = draw_population(point.nodes, seed);
    cluster::TraceClusterConfig tc;
    tc.bandwidth_bps = point.bandwidth_bps;
    tc.block_size_bytes = point.block_size;
    const auto cl = std::make_shared<const cluster::Cluster>(
        cluster::model_cluster(params, tc));

    workload::Workload w = workload::simulation_workload();
    w.block_size_bytes = point.block_size;

    core::ExperimentConfig config;
    config.blocks = w.blocks_for(point.nodes);
    config.job.gamma = w.gamma();
    config.job.origin_fetch_delay = reissue_delay;
    config.steady_state_start = true;
    config.seed = seed;
    config.obs = sink.options.obs;

    for (const bench::Series& s : series) {
      config.policy = s.policy;
      config.replication = s.replication;
      cells.push_back({cl, config, runs});
    }
  }
  const std::vector<core::RepeatedResult> results =
      exec.run_sweep(cells, sink.collector());

  common::Table table({column, "series", "elapsed (s)", "total ovh",
                       "rework", "recovery", "migration", "misc",
                       "locality"});
  std::size_t cell = 0;
  for (const Point& point : points) {
    for (const bench::Series& s : series) {
      const core::RepeatedResult& r = results[cell++];
      table.add_row({point.label, s.label(),
                     common::format_double(r.elapsed.mean, 0),
                     common::format_percent(r.total_ratio),
                     common::format_percent(r.rework_ratio),
                     common::format_percent(r.recovery_ratio),
                     common::format_percent(r.migration_ratio),
                     common::format_percent(r.misc_ratio),
                     common::format_percent(r.locality.mean)});
      report.add_result(title, point.label, s.label(), r);
    }
  }
  std::printf("\n--- %s ---\n%s", title.c_str(), table.to_string().c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bench::BenchOptions common_opts = bench::bench_options(
      flags, {.runs = 1, .full_runs = 3, .seed = 5, .nodes = 512,
              .full_nodes = 8192});
  const bool full = common_opts.full;
  const std::size_t nodes = common_opts.nodes;
  const int runs = common_opts.runs;
  const std::uint64_t seed = common_opts.seed;
  const double reissue = flags.get_double("reissue-delay", 600.0);
  const bench::RunnerOptions& options = common_opts.runner;
  bench::abort_on_unused_flags(flags);

  bench::print_header(
      "Figure 5 — large-scale simulation, overhead decomposition",
      "paper reference: existing r1 incurs 172% overhead at 4 Mb/s; ADAPT "
      "halves migration;\nmisc dominates at large block sizes. Defaults "
      "scaled to " + std::to_string(nodes) + " nodes, " +
          std::to_string(runs) +
          " run(s) per point (paper: 8192; pass --full).");

  runner::ExperimentRunner exec(options.threads);
  runner::Report report("fig5_simulation", seed, runs);
  report.set_config("nodes", static_cast<double>(nodes));
  report.set_config("reissue_delay", reissue);
  bench::ObsSink sink(options);

  const auto series = bench::fig5_series(full);
  const workload::SimulationDefaults defaults =
      workload::simulation_defaults();

  {
    std::vector<Point> points;
    for (const double bps : workload::bandwidth_sweep()) {
      points.push_back({common::format_bandwidth(bps), nodes, bps,
                        defaults.block_size_bytes});
    }
    run_sweep(exec, report, sink, "Figure 5(a): network bandwidth",
              "bandwidth", points, series, runs, seed, reissue);
  }
  {
    std::vector<Point> points;
    for (const std::uint64_t bytes : workload::block_size_sweep()) {
      points.push_back({common::format_bytes(bytes), nodes,
                        defaults.bandwidth_bps, bytes});
    }
    run_sweep(exec, report, sink, "Figure 5(b): block size", "block size",
              points, series, runs, seed + 1, reissue);
  }
  {
    std::vector<Point> points;
    for (const std::size_t n : workload::simulation_node_sweep()) {
      const std::size_t scaled = full ? n : n / 8;
      points.push_back({std::to_string(scaled), scaled,
                        defaults.bandwidth_bps,
                        defaults.block_size_bytes});
    }
    run_sweep(exec, report, sink, "Figure 5(c): number of nodes", "nodes",
              points, series, runs, seed + 2, reissue);
  }
  sink.finish(report);
  bench::write_report(report, options.json_path);
  return 0;
}
