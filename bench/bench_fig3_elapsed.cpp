// Figure 3 reproduction: map-phase elapsed time in the emulated
// non-dedicated environment.
//   (a) vs ratio of interrupted nodes {1/4, 1/2, 3/4}
//   (b) vs network bandwidth {4, 8, 16, 32} Mb/s
//   (c) vs cluster size {32, 64, 128, 256}
// Series: random/ADAPT x 1/2 replicas; defaults follow Tables 2 and 3.
//
//   ./bench_fig3_elapsed [--runs R] [--seed S] [--full]
//                        [--threads T] [--json PATH]
//                        [--trace PATH] [--metrics]
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "cluster/topology.h"
#include "workload/sweeps.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

struct Sweep {
  std::string title;
  std::string column;
  std::vector<std::string> labels;
  std::vector<cluster::EmulationConfig> configs;
};

void run_sweep(runner::ExperimentRunner& exec, runner::Report& report,
               bench::ObsSink& sink, const Sweep& sweep, int runs,
               std::uint64_t seed) {
  const workload::Workload w = workload::emulation_workload();
  const std::vector<bench::Series> series = bench::fig3_series();

  std::vector<runner::ExperimentRunner::SweepCell> cells;
  cells.reserve(sweep.configs.size() * series.size());
  for (std::size_t i = 0; i < sweep.configs.size(); ++i) {
    const auto cl = std::make_shared<const cluster::Cluster>(
        cluster::emulated_cluster(sweep.configs[i]));
    core::ExperimentConfig config;
    config.blocks = w.blocks_for(cl->size());
    config.job.gamma = w.gamma();
    config.seed = seed + i;
    config.obs = sink.options.obs;
    for (const bench::Series& s : series) {
      config.policy = s.policy;
      config.replication = s.replication;
      cells.push_back({cl, config, runs});
    }
  }
  const std::vector<core::RepeatedResult> results =
      exec.run_sweep(cells, sink.collector());

  common::Table table({sweep.column, "random r1 (s)", "adapt r1 (s)",
                       "random r2 (s)", "adapt r2 (s)", "adapt r1 gain"});
  std::size_t cell = 0;
  for (std::size_t i = 0; i < sweep.configs.size(); ++i) {
    std::vector<std::string> row = {sweep.labels[i]};
    double random_r1 = 0.0;
    double adapt_r1 = 0.0;
    for (const bench::Series& s : series) {
      const core::RepeatedResult& r = results[cell++];
      row.push_back(common::format_double(r.elapsed.mean, 0) + " ±" +
                    common::format_double(r.elapsed.ci95_half_width, 0));
      if (s.replication == 1) {
        (s.policy == core::PolicyKind::kRandom ? random_r1 : adapt_r1) =
            r.elapsed.mean;
      }
      report.add_result(sweep.title, sweep.labels[i], s.label(), r);
    }
    row.push_back(common::format_percent(
        random_r1 > 0 ? 1.0 - adapt_r1 / random_r1 : 0.0));
    table.add_row(row);
  }
  std::printf("\n--- %s ---\n%s", sweep.title.c_str(),
              table.to_string().c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bench::BenchOptions common_opts = bench::bench_options(
      flags, {.runs = 5, .full_runs = 10, .seed = 2012});
  const bool full = common_opts.full;
  const int runs = common_opts.runs;
  const std::uint64_t seed = common_opts.seed;
  const bench::RunnerOptions& options = common_opts.runner;
  bench::abort_on_unused_flags(flags);

  bench::print_header(
      "Figure 3 — elapsed time, emulated environment (Tables 2/3)",
      "paper reference at 128 nodes, ratio 1/2, 8 Mb/s: random r1 = 391 s, "
      "adapt r1 = 234 s (40% gain)\n" +
          std::to_string(runs) + " runs per point" +
          (full ? "" : "; pass --full for the paper's 10 runs"));

  runner::ExperimentRunner exec(options.threads);
  runner::Report report("fig3_elapsed", seed, runs);
  bench::ObsSink sink(options);

  const workload::EmulationDefaults defaults =
      workload::emulation_defaults();

  Sweep ratio_sweep;
  ratio_sweep.title = "Figure 3(a): ratio of interrupted nodes";
  ratio_sweep.column = "interrupted";
  for (const double ratio : workload::interrupted_ratio_sweep()) {
    cluster::EmulationConfig config;
    config.node_count = defaults.node_count;
    config.interrupted_ratio = ratio;
    config.bandwidth_bps = defaults.bandwidth_bps;
    ratio_sweep.labels.push_back(common::format_double(ratio, 2));
    ratio_sweep.configs.push_back(config);
  }
  run_sweep(exec, report, sink, ratio_sweep, runs, seed);

  Sweep bw_sweep;
  bw_sweep.title = "Figure 3(b): network bandwidth";
  bw_sweep.column = "bandwidth";
  for (const double bps : workload::bandwidth_sweep()) {
    cluster::EmulationConfig config;
    config.node_count = defaults.node_count;
    config.interrupted_ratio = defaults.interrupted_ratio;
    config.bandwidth_bps = bps;
    bw_sweep.labels.push_back(common::format_bandwidth(bps));
    bw_sweep.configs.push_back(config);
  }
  run_sweep(exec, report, sink, bw_sweep, runs, seed + 100);

  Sweep node_sweep;
  node_sweep.title = "Figure 3(c): number of nodes";
  node_sweep.column = "nodes";
  for (const std::size_t n : workload::emulation_node_sweep()) {
    cluster::EmulationConfig config;
    config.node_count = n;
    config.interrupted_ratio = defaults.interrupted_ratio;
    config.bandwidth_bps = defaults.bandwidth_bps;
    node_sweep.labels.push_back(std::to_string(n));
    node_sweep.configs.push_back(config);
  }
  run_sweep(exec, report, sink, node_sweep, runs, seed + 200);

  sink.finish(report);
  bench::write_report(report, options.json_path);
  return 0;
}
