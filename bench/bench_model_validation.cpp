// Validation of the Section III model: the closed-form E[T] (Eq. 5)
// against Monte-Carlo simulation of a single node re-executing a task
// under M/G/1 interruptions, across the Table 2 groups and beyond.
//
//   ./bench_model_validation [--tasks N] [--seed S]
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/event_queue.h"
#include "sim/injector.h"

namespace {

using namespace adapt;

// One task of length gamma, re-executed locally after each interruption
// (the model's world); returns the completion time.
double simulate_one(const cluster::NodeSpec& spec, double gamma,
                    common::Rng rng) {
  sim::EventQueue queue;
  struct Runner : sim::InterruptionInjector::Listener {
    sim::EventQueue* queue = nullptr;
    double gamma = 0.0;
    bool done = false;
    double finished_at = 0.0;
    sim::EventQueue::Handle attempt;
    void begin() {
      attempt = queue->schedule(queue->now() + gamma, [this] {
        done = true;
        finished_at = queue->now();
      });
    }
    void on_node_down(cluster::NodeIndex) override { attempt.cancel(); }
    void on_node_up(cluster::NodeIndex) override {
      if (!done) begin();
    }
  } runner;
  runner.queue = &queue;
  runner.gamma = gamma;
  const std::vector<cluster::NodeSpec> nodes = {spec};
  sim::InterruptionInjector injector(queue, nodes, runner, rng);
  injector.start();
  runner.begin();
  queue.run_until([&] { return runner.done; });
  return runner.finished_at;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const int tasks = static_cast<int>(flags.get_int("tasks", 20000));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  bench::abort_on_unused_flags(flags);

  bench::print_header(
      "Model validation — Eq. 5 E[T] vs Monte-Carlo",
      std::to_string(tasks) + " simulated tasks per point; exponential "
      "service (M/M/1 special case of M/G/1).");

  struct Case {
    const char* label;
    double lambda;
    double mu;
    double gamma;
  };
  const Case cases[] = {
      {"Table 2 group 1 (gamma=6)", 0.1, 4.0, 6.0},
      {"Table 2 group 2 (gamma=6)", 0.1, 8.0, 6.0},
      {"Table 2 group 3 (gamma=6)", 0.05, 4.0, 6.0},
      {"Table 2 group 4 (gamma=6)", 0.05, 8.0, 6.0},
      {"volunteer host (gamma=12)", 0.001, 300.0, 12.0},
      {"flaky host (gamma=12)", 0.01, 60.0, 12.0},
      {"near-unstable (rho=0.9)", 0.09, 10.0, 8.0},
  };

  common::Table table({"case", "lambda", "mu", "E[T] Eq.5 (s)",
                       "simulated (s)", "rel err"});
  common::Rng seeds(seed);
  for (const Case& c : cases) {
    const avail::InterruptionParams params{c.lambda, c.mu};
    const double expected = avail::expected_task_time(params, c.gamma);

    cluster::NodeSpec spec;
    spec.mode = cluster::AvailabilityMode::kModel;
    spec.params = params;
    spec.service_time = avail::exponential(c.mu);

    common::RunningStats stats;
    for (int i = 0; i < tasks; ++i) {
      stats.add(simulate_one(spec, c.gamma, common::Rng(seeds())));
    }
    table.add_row({c.label, common::format_double(c.lambda, 3),
                   common::format_double(c.mu, 0),
                   common::format_double(expected, 2),
                   common::format_double(stats.mean(), 2),
                   common::format_percent(
                       common::relative_error(stats.mean(), expected))});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
