// Shared plumbing for the figure/table reproduction benches: flag
// handling, policy enumeration, and consistent headers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "core/adapt.h"
#include "runner/report.h"
#include "runner/runner.h"

namespace adapt::bench {

// Shared runner flags: every figure bench accepts
//   --threads N   worker threads (0 = one per hardware thread)
//   --json PATH   machine-readable results (byte-identical across
//                 thread counts for the same seed)
struct RunnerOptions {
  std::size_t threads = 0;
  std::string json_path;
};

inline RunnerOptions runner_options(const common::Flags& flags) {
  RunnerOptions options;
  options.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  options.json_path = flags.get_string("json", "");
  if (!options.json_path.empty()) {
    // Fail fast on an unwritable path rather than after the whole run.
    std::FILE* probe = std::fopen(options.json_path.c_str(), "wb");
    if (probe == nullptr) {
      std::fprintf(stderr, "cannot open --json path %s for writing\n",
                   options.json_path.c_str());
      std::exit(2);
    }
    std::fclose(probe);
  }
  return options;
}

inline void write_report(const runner::Report& report,
                         const std::string& path) {
  if (path.empty()) return;
  try {
    report.write(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
  std::printf("\nwrote %zu result row(s) to %s\n", report.rows(),
              path.c_str());
}

// A (policy, replication) curve as plotted in the paper's figures.
struct Series {
  core::PolicyKind policy;
  int replication;
  std::string label() const {
    return core::to_string(policy) + " r" + std::to_string(replication);
  }
};

inline std::vector<Series> fig3_series() {
  return {{core::PolicyKind::kRandom, 1},
          {core::PolicyKind::kAdapt, 1},
          {core::PolicyKind::kRandom, 2},
          {core::PolicyKind::kAdapt, 2}};
}

inline std::vector<Series> fig5_series(bool full) {
  std::vector<Series> series = {{core::PolicyKind::kRandom, 1},
                                {core::PolicyKind::kNaive, 1},
                                {core::PolicyKind::kAdapt, 1},
                                {core::PolicyKind::kRandom, 2},
                                {core::PolicyKind::kAdapt, 2}};
  if (full) {
    series.push_back({core::PolicyKind::kRandom, 3});
    series.push_back({core::PolicyKind::kAdapt, 3});
  }
  return series;
}

inline void print_header(const std::string& title,
                         const std::string& scaling_note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!scaling_note.empty()) std::printf("%s\n", scaling_note.c_str());
  std::printf("==============================================================\n");
}

inline void abort_on_unused_flags(const common::Flags& flags) {
  const auto unused = flags.unused();
  if (unused.empty()) return;
  std::fprintf(stderr, "unknown flag(s):");
  for (const auto& name : unused) std::fprintf(stderr, " --%s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace adapt::bench
