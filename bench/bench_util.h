// Shared plumbing for the figure/table reproduction benches: flag
// handling, policy enumeration, and consistent headers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table.h"
#include "core/adapt.h"
#include "obs/lineage.h"
#include "obs/perfetto.h"
#include "obs/trace.h"
#include "runner/report.h"
#include "runner/runner.h"

namespace adapt::bench {

// Shared runner flags: every figure bench accepts
//   --threads N    worker threads (0 = one per hardware thread)
//   --json PATH    machine-readable results (byte-identical across
//                  thread counts for the same seed)
//   --trace PATH   structured event trace, JSONL, one line per event
//                  (byte-identical across thread counts)
//   --metrics      collect metrics and embed them in the --json report
//   --spans PATH   span profile, JSONL, one line per closed span
//                  (byte-identical across thread counts)
//   --span-host    include host-clock ns in the span export (real
//                  profiling cost; breaks byte-identity, off by default)
//   --sample-dt S  sample metric time series every S simulated seconds
//                  and embed per-run sample counts in the --json report
//   --timeseries PATH  metric time series, JSONL (needs --sample-dt)
//   --calibrate    track predicted-vs-realized task times + CUSUM drift
//   --lineage PATH causal lineage export, JSONL: per-block replica
//                  chains + loss post-mortems, per-task attempt trees
//                  (byte-identical across thread counts)
//   --perfetto PATH  Perfetto/Chrome trace-event JSON timeline
//                  (byte-identical across thread counts)
//   --ring-capacity N  event-tracer ring size; records beyond it are
//                  dropped oldest-first and counted (lineage stays
//                  exact — it streams ahead of the ring)
struct RunnerOptions {
  std::size_t threads = 0;
  std::string json_path;
  std::string trace_path;
  std::string spans_path;
  std::string timeseries_path;
  std::string lineage_path;
  std::string perfetto_path;
  bool metrics = false;
  obs::Options obs;  // derived from the flags above
};

inline void probe_writable(const std::string& path, const char* flag) {
  // Fail fast on an unwritable path rather than after the whole run.
  std::FILE* probe = std::fopen(path.c_str(), "wb");
  if (probe == nullptr) {
    std::fprintf(stderr, "cannot open %s path %s for writing\n", flag,
                 path.c_str());
    std::exit(2);
  }
  std::fclose(probe);
}

inline RunnerOptions runner_options(const common::Flags& flags) {
  RunnerOptions options;
  options.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  options.json_path = flags.get_string("json", "");
  if (!options.json_path.empty()) {
    probe_writable(options.json_path, "--json");
  }
  options.trace_path = flags.get_string("trace", "");
  if (!options.trace_path.empty()) {
    probe_writable(options.trace_path, "--trace");
  }
  options.spans_path = flags.get_string("spans", "");
  if (!options.spans_path.empty()) {
    probe_writable(options.spans_path, "--spans");
  }
  options.timeseries_path = flags.get_string("timeseries", "");
  if (!options.timeseries_path.empty()) {
    probe_writable(options.timeseries_path, "--timeseries");
  }
  options.lineage_path = flags.get_string("lineage", "");
  if (!options.lineage_path.empty()) {
    probe_writable(options.lineage_path, "--lineage");
  }
  options.perfetto_path = flags.get_string("perfetto", "");
  if (!options.perfetto_path.empty()) {
    probe_writable(options.perfetto_path, "--perfetto");
  }
  options.metrics = flags.get_bool("metrics", false);
  // The Perfetto exporter renders from the record stream, so it needs
  // the trace collected even without --trace.
  options.obs.trace =
      !options.trace_path.empty() || !options.perfetto_path.empty();
  options.obs.lineage = !options.lineage_path.empty();
  options.obs.metrics = options.metrics;
  options.obs.spans = !options.spans_path.empty();
  options.obs.span_host = flags.get_bool("span-host", false);
  options.obs.sample_dt = flags.get_double("sample-dt", 0.0);
  const std::int64_t ring =
      flags.get_int("ring-capacity",
                    static_cast<std::int64_t>(options.obs.ring_capacity));
  if (ring <= 0) {
    std::fprintf(stderr, "--ring-capacity must be > 0\n");
    std::exit(2);
  }
  options.obs.ring_capacity = static_cast<std::size_t>(ring);
  options.obs.calibration.enabled = flags.get_bool("calibrate", false);
  if (options.obs.calibration.enabled) {
    options.obs.calibration.per_node = true;
  }
  if (!options.timeseries_path.empty() && options.obs.sample_dt <= 0.0) {
    std::fprintf(stderr, "--timeseries requires --sample-dt > 0\n");
    std::exit(2);
  }
  return options;
}

// The flag set shared by every figure/table bench, parsed in one
// place instead of per-main:
//   --full         paper-scale run (larger node counts, more runs)
//   --runs R       repetitions per point
//   --seed S       base RNG seed
//   --nodes N      cluster size (only benches that pass a nodes default)
// plus the RunnerOptions set (--threads/--json/--trace/--metrics).
// Defaults differ per bench, so they travel as BenchDefaults; a
// `full_*` value of 0/-1 means "same as the quick default".
struct BenchDefaults {
  int runs = 1;
  int full_runs = -1;
  std::uint64_t seed = 1;
  std::size_t nodes = 0;  // 0 = this bench takes no --nodes flag
  std::size_t full_nodes = 0;
};

struct BenchOptions {
  bool full = false;
  int runs = 0;
  std::uint64_t seed = 0;
  std::size_t nodes = 0;
  RunnerOptions runner;
};

inline BenchOptions bench_options(const common::Flags& flags,
                                  const BenchDefaults& defaults) {
  BenchOptions options;
  options.full = flags.get_bool("full", false);
  const int default_runs = options.full && defaults.full_runs > 0
                               ? defaults.full_runs
                               : defaults.runs;
  options.runs = static_cast<int>(flags.get_int("runs", default_runs));
  options.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", static_cast<std::int64_t>(defaults.seed)));
  if (defaults.nodes != 0) {
    const std::size_t default_nodes =
        options.full && defaults.full_nodes != 0 ? defaults.full_nodes
                                                 : defaults.nodes;
    options.nodes = static_cast<std::size_t>(
        flags.get_int("nodes", static_cast<std::int64_t>(default_nodes)));
  }
  options.runner = runner_options(flags);
  return options;
}

// Per-run observation sink for a bench: hand `collector()` to
// run_sweep/run_replications (or null when observability is off), then
// `finish(report)` to write the trace file and embed metrics/timelines.
struct ObsSink {
  const RunnerOptions& options;
  std::vector<obs::RunObservations> runs;

  explicit ObsSink(const RunnerOptions& opts) : options(opts) {}

  std::vector<obs::RunObservations>* collector() {
    return options.obs.enabled() ? &runs : nullptr;
  }

  void finish(runner::Report& report) {
    if (!options.obs.enabled()) return;
    report.set_observability(runs);
    if (!options.trace_path.empty()) {
      try {
        obs::write_jsonl(options.trace_path, runs);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(1);
      }
      std::uint64_t records = 0;
      std::uint64_t dropped = 0;
      for (const obs::RunObservations& run : runs) {
        records += run.records.size();
        dropped += run.dropped;
      }
      std::printf("\nwrote %llu trace record(s) (%llu dropped) to %s\n",
                  static_cast<unsigned long long>(records),
                  static_cast<unsigned long long>(dropped),
                  options.trace_path.c_str());
    }
    if (!options.spans_path.empty()) {
      try {
        obs::write_spans_jsonl(options.spans_path, runs,
                               options.obs.span_host);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(1);
      }
      std::uint64_t spans = 0;
      for (const obs::RunObservations& run : runs) spans += run.spans.size();
      std::printf("wrote %llu span(s) to %s\n",
                  static_cast<unsigned long long>(spans),
                  options.spans_path.c_str());
    }
    if (!options.timeseries_path.empty()) {
      try {
        obs::write_timeseries_jsonl(options.timeseries_path, runs);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(1);
      }
      std::uint64_t samples = 0;
      for (const obs::RunObservations& run : runs) {
        samples += run.timeseries.times.size();
      }
      std::printf("wrote %llu sample(s) to %s\n",
                  static_cast<unsigned long long>(samples),
                  options.timeseries_path.c_str());
    }
    if (!options.lineage_path.empty()) {
      try {
        obs::write_lineage_jsonl(options.lineage_path, runs);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(1);
      }
      std::size_t blocks = 0;
      std::uint64_t lost = 0;
      for (const obs::RunObservations& run : runs) {
        if (run.lineage == nullptr) continue;
        blocks += run.lineage->blocks.size();
        lost += obs::post_mortem(*run.lineage).total;
      }
      std::printf("wrote lineage for %zu block chain(s) (%llu lost) to %s\n",
                  blocks, static_cast<unsigned long long>(lost),
                  options.lineage_path.c_str());
    }
    if (!options.perfetto_path.empty()) {
      try {
        obs::write_perfetto_json(options.perfetto_path, runs);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(1);
      }
      std::printf("wrote Perfetto timeline to %s (load in "
                  "ui.perfetto.dev or chrome://tracing)\n",
                  options.perfetto_path.c_str());
    }
  }
};

inline void write_report(const runner::Report& report,
                         const std::string& path) {
  if (path.empty()) return;
  try {
    report.write(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(1);
  }
  std::printf("\nwrote %zu result row(s) to %s\n", report.rows(),
              path.c_str());
}

// A (policy, replication) curve as plotted in the paper's figures.
struct Series {
  core::PolicyKind policy;
  int replication;
  std::string label() const {
    return core::to_string(policy) + " r" + std::to_string(replication);
  }
};

inline std::vector<Series> fig3_series() {
  return {{core::PolicyKind::kRandom, 1},
          {core::PolicyKind::kAdapt, 1},
          {core::PolicyKind::kRandom, 2},
          {core::PolicyKind::kAdapt, 2}};
}

inline std::vector<Series> fig5_series(bool full) {
  std::vector<Series> series = {{core::PolicyKind::kRandom, 1},
                                {core::PolicyKind::kNaive, 1},
                                {core::PolicyKind::kAdapt, 1},
                                {core::PolicyKind::kRandom, 2},
                                {core::PolicyKind::kAdapt, 2}};
  if (full) {
    series.push_back({core::PolicyKind::kRandom, 3});
    series.push_back({core::PolicyKind::kAdapt, 3});
  }
  return series;
}

inline void print_header(const std::string& title,
                         const std::string& scaling_note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!scaling_note.empty()) std::printf("%s\n", scaling_note.c_str());
  std::printf("==============================================================\n");
}

inline void abort_on_unused_flags(const common::Flags& flags) {
  const auto unused = flags.unused();
  if (unused.empty()) return;
  std::fprintf(stderr, "unknown flag(s):");
  for (const auto& name : unused) std::fprintf(stderr, " --%s", name.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace adapt::bench
