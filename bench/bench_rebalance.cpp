// Drift→rebalance loop bench: a continuous stream of map jobs over one
// persistent mini-HDFS whose availability regime shifts mid-stream. The
// data was placed for the initial regime; from --shift-job on, the most
// reliable half of the pool turns flaky. With the loop OFF the stale
// placement keeps paying for the shift; with it ON the CUSUM drift
// alarms re-estimate (lambda, mu), rebuild the Algorithm-1 weights and
// migrate the degraded replicas under a bandwidth budget. The sweep
// reports stream makespan, calibration ratio and migration traffic for
// both arms.
//
//   ./bench_rebalance [--nodes N] [--runs R] [--seed S] [--jobs J]
//                     [--gap SEC] [--shift-job J] [--shift-lambda X]
//                     [--shift-mu X] [--hysteresis H] [--cooldown SEC]
//                     [--budget-bps B] [--migration-concurrency C]
//                     [--threads T] [--json PATH] [--trace PATH]
//                     [--metrics] [--sample-dt S] [--spans PATH]
//                     [--timeseries PATH] [--calibrate]
//
// Exports are byte-identical across --threads for the same seed.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "cluster/topology.h"
#include "common/stats.h"
#include "core/job_stream.h"
#include "runner/thread_pool.h"
#include "trace/generator.h"
#include "workload/sweeps.h"
#include "workload/terasort.h"

namespace {

using namespace adapt;

std::vector<avail::InterruptionParams> draw_population(std::size_t nodes,
                                                       std::uint64_t seed) {
  trace::GeneratorConfig config;
  config.node_count = nodes;
  config.horizon = 14.0 * 24 * 3600;
  config.seed = seed;
  const trace::GeneratedTrace gen = trace::generate_seti_like_trace(config);
  std::vector<avail::InterruptionParams> params;
  params.reserve(gen.truth.size());
  for (const trace::HostTruth& host : gen.truth) {
    params.push_back(host.params());
  }
  return params;
}

// The regime shift that hurts a stale placement most: the *best* half of
// the pool (lowest utilization, where ADAPT concentrated the data) turns
// flaky — interruptions arrive `lambda_factor` times as often and last
// `mu_factor` times as long.
std::vector<avail::InterruptionParams> shift_population(
    const std::vector<avail::InterruptionParams>& initial,
    double lambda_factor, double mu_factor) {
  std::vector<std::size_t> order(initial.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ua = initial[a].utilization();
    const double ub = initial[b].utilization();
    return ua != ub ? ua < ub : a < b;
  });
  std::vector<avail::InterruptionParams> shifted = initial;
  for (std::size_t i = 0; i < order.size() / 2; ++i) {
    avail::InterruptionParams& p = shifted[order[i]];
    p.lambda *= lambda_factor;
    p.mu *= mu_factor;
    // Keep the node usable (rho < 1): a saturated node would just be
    // declared dead, which is the churn bench's territory.
    if (!p.stable()) p.mu = 0.9 / p.lambda;
  }
  return shifted;
}

struct Scenario {
  std::string label;
  int shift_at_job;  // < 0 = no shift
};

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const common::Flags flags(argc, argv);
  const bench::BenchOptions common_opts =
      bench::bench_options(flags, {.runs = 2, .seed = 11, .nodes = 96,
                                   .full_nodes = 128});
  const std::size_t nodes = common_opts.nodes;
  const int runs = common_opts.runs;
  const std::uint64_t seed = common_opts.seed;
  const int jobs = static_cast<int>(flags.get_int("jobs", 4));
  const double gap = flags.get_double("gap", 0.0);
  const int shift_job = static_cast<int>(flags.get_int("shift-job", 1));
  const double shift_lambda = flags.get_double("shift-lambda", 6.0);
  const double shift_mu = flags.get_double("shift-mu", 3.0);
  const double hysteresis = flags.get_double("hysteresis", 1.5);
  const double cooldown = flags.get_double("cooldown", 60.0);
  const double budget_bps =
      flags.get_double("budget-bps", 4.0 * 1024 * 1024);
  const int migration_concurrency =
      static_cast<int>(flags.get_int("migration-concurrency", 4));
  bench::RunnerOptions options = common_opts.runner;
  bench::abort_on_unused_flags(flags);
  // The loop is driven by the CUSUM stepping on the sampling tick, so
  // this bench always samples and always tracks calibration.
  if (options.obs.sample_dt <= 0.0) options.obs.sample_dt = 20.0;
  options.obs.calibration.enabled = true;

  bench::print_header(
      "Drift→rebalance loop — regime shift on a continuous job stream",
      "data placed for the initial regime; the reliable half of the pool "
      "turns flaky at --shift-job.\nDefaults: " + std::to_string(nodes) +
          " nodes, " + std::to_string(jobs) + " jobs/stream, " +
          std::to_string(runs) + " stream(s) per point.");

  const auto initial_params = draw_population(nodes, seed);
  const auto shifted_params =
      shift_population(initial_params, shift_lambda, shift_mu);
  cluster::TraceClusterConfig tc;
  const cluster::Cluster initial = cluster::model_cluster(initial_params, tc);
  const cluster::Cluster shifted = cluster::model_cluster(shifted_params, tc);
  workload::Workload w = workload::simulation_workload();

  const std::vector<Scenario> scenarios = {
      {"no shift", -1},
      {"shift@" + std::to_string(shift_job), shift_job},
  };
  const std::vector<bool> loop_arms = {false, true};

  // One flat pool job per (scenario, arm, run); every slot derives its
  // own seed, so results and exports are identical for any --threads.
  struct Cell {
    Scenario scenario;
    bool loop;
  };
  std::vector<Cell> cells;
  for (const Scenario& s : scenarios) {
    for (const bool loop : loop_arms) cells.push_back({s, loop});
  }
  std::vector<core::JobStreamResult> results(cells.size() *
                                             static_cast<std::size_t>(runs));
  std::vector<std::function<void()>> pool_jobs;
  pool_jobs.reserve(results.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (int r = 0; r < runs; ++r) {
      const std::size_t slot = c * static_cast<std::size_t>(runs) +
                               static_cast<std::size_t>(r);
      pool_jobs.push_back([&, c, slot] {
        const Cell& cell = cells[c];
        core::JobStreamConfig config;
        config.policy = core::PolicyKind::kAdapt;
        config.replication = 2;
        config.blocks = w.blocks_for(nodes);
        config.job.gamma = w.gamma();
        config.job.churn.enabled = true;
        config.job.churn.rereplication.max_concurrent = 8;
        config.job.rebalance.enabled = cell.loop;
        config.job.rebalance.hysteresis = hysteresis;
        config.job.rebalance.cooldown = cooldown;
        config.job.rebalance.migration.max_concurrent =
            migration_concurrency;
        config.job.rebalance.migration.budget_bytes_per_s = budget_bps;
        config.jobs = jobs;
        config.arrival_gap = gap;
        config.shift_at_job = cell.scenario.shift_at_job;
        config.seed = runner::derive_run_seed(seed, slot);
        config.obs = options.obs;
        results[slot] =
            core::run_job_stream(initial, shifted, config);
      });
    }
  }
  runner::ThreadPool pool(options.threads);
  pool.run_all(std::move(pool_jobs));

  runner::Report report("rebalance", seed, runs);
  report.set_config("nodes", static_cast<double>(nodes));
  report.set_config("jobs", static_cast<double>(jobs));
  report.set_config("hysteresis", hysteresis);
  report.set_config("cooldown", cooldown);
  report.set_config("budget_bps", budget_bps);
  bench::ObsSink sink(options);

  common::Table table({"scenario", "loop", "makespan (s)", "calib ratio",
                       "triggers", "moved", "give-ups", "migrated",
                       "migr (B/s)", "tasks lost"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    std::vector<double> makespans;
    double ratio = 0.0;
    std::uint64_t triggers = 0;
    std::uint64_t committed = 0;
    std::uint64_t giveups = 0;
    std::uint64_t bytes = 0;
    std::uint64_t tasks_lost = 0;
    std::uint64_t failed = 0;
    for (int r = 0; r < runs; ++r) {
      const std::size_t slot = c * static_cast<std::size_t>(runs) +
                               static_cast<std::size_t>(r);
      core::JobStreamResult& result = results[slot];
      makespans.push_back(result.makespan);
      ratio += result.calibration_ratio;
      triggers += result.rebalance_triggers;
      committed += result.migrations_committed;
      giveups += result.migration_giveups;
      bytes += result.migration_bytes;
      tasks_lost += result.tasks_lost;
      failed += result.failed_jobs;
      if (options.obs.enabled()) {
        sink.runs.push_back(std::move(result.obs));
      }
    }
    ratio /= static_cast<double>(runs);
    const common::Summary makespan = common::summarize(makespans);
    // Budget compliance: migration traffic averaged over the stream.
    const double migr_bps =
        makespan.mean > 0.0
            ? static_cast<double>(bytes) /
                  (makespan.mean * static_cast<double>(runs))
            : 0.0;
    const std::string series = cell.loop ? "loop on" : "loop off";
    table.add_row({cell.scenario.label, series,
                   common::format_double(makespan.mean, 0),
                   common::format_double(ratio, 3),
                   std::to_string(triggers), std::to_string(committed),
                   std::to_string(giveups), common::format_bytes(bytes),
                   common::format_double(migr_bps, 0),
                   std::to_string(tasks_lost)});
    report.add_row(
        "Regime shift: stream makespan & calibration",
        cell.scenario.label, series,
        {{"makespan_mean", makespan.mean},
         {"makespan_stddev", makespan.stddev},
         {"calibration_ratio", ratio},
         {"rebalance_triggers", static_cast<double>(triggers)},
         {"migrations_committed", static_cast<double>(committed)},
         {"migration_giveups", static_cast<double>(giveups)},
         {"migration_bytes", static_cast<double>(bytes)},
         {"migration_bps", migr_bps},
         {"tasks_lost", static_cast<double>(tasks_lost)},
         {"failed_jobs", static_cast<double>(failed)}});
  }
  std::printf("\n--- Regime shift: stream makespan & calibration ---\n%s",
              table.to_string().c_str());
  std::printf("budget: %s/s per stream; 'migr (B/s)' is realized "
              "migration traffic over the mean makespan.\n",
              common::format_bytes(
                  static_cast<std::uint64_t>(budget_bps)).c_str());
  std::fflush(stdout);

  sink.finish(report);
  bench::write_report(report, options.json_path);
  return 0;
}
